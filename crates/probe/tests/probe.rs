//! Behavioral tests for the probe: span nesting under concurrency, a
//! well-formed Chrome trace, and strict no-op behavior when disabled.
//!
//! The collector is global, so every test serializes on one mutex and
//! drains the collector before and after itself.

use std::sync::Mutex;

use ft_probe::{chrome_trace, MetricsReport};

static GUARD: Mutex<()> = Mutex::new(());

fn isolated<T>(f: impl FnOnce() -> T) -> T {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    ft_probe::enable();
    let _ = ft_probe::take();
    let out = f();
    ft_probe::disable();
    let _ = ft_probe::take();
    out
}

#[test]
fn spans_nest_and_close_on_one_thread() {
    let snap = isolated(|| {
        {
            let mut outer = ft_probe::span("t", "outer");
            outer.field("k", 1u64);
            {
                let _inner = ft_probe::span("t", "inner");
            }
        }
        ft_probe::take()
    });
    // Completion order: inner closes first.
    assert_eq!(snap.events.len(), 2);
    assert_eq!(snap.events[0].name, "inner");
    assert_eq!(snap.events[1].name, "outer");
    let (inner, outer) = (&snap.events[0], &snap.events[1]);
    assert_eq!(inner.tid, outer.tid, "same thread, same track");
    // Interval containment is what makes Perfetto stack them.
    assert!(outer.ts_us <= inner.ts_us);
    assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1e-3);
    assert_eq!(
        outer.fields,
        vec![("k".to_string(), ft_probe::FieldValue::U64(1))]
    );
}

#[test]
fn concurrent_threads_get_disjoint_tracks_with_nested_spans() {
    const THREADS: usize = 8;
    const DEPTH: usize = 5;
    let snap = isolated(|| {
        std::thread::scope(|s| {
            for i in 0..THREADS {
                s.spawn(move || {
                    fn nest(level: usize, worker: usize) {
                        if level == 0 {
                            return;
                        }
                        let mut sp = ft_probe::span("t", "level");
                        sp.field("worker", worker);
                        sp.field("level", level);
                        nest(level - 1, worker);
                    }
                    nest(DEPTH, i);
                });
            }
        });
        ft_probe::take()
    });
    assert_eq!(snap.events.len(), THREADS * DEPTH);
    // Each thread owns a distinct tid, and within a tid the spans nest by
    // containment (deeper spans start later and end earlier).
    let mut by_tid: std::collections::BTreeMap<u64, Vec<&ft_probe::Event>> = Default::default();
    for e in &snap.events {
        by_tid.entry(e.tid).or_default().push(e);
    }
    assert_eq!(by_tid.len(), THREADS, "one track per worker thread");
    for events in by_tid.values() {
        assert_eq!(events.len(), DEPTH);
        let mut sorted = events.clone();
        sorted.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        for pair in sorted.windows(2) {
            let (parent, child) = (pair[0], pair[1]);
            assert!(parent.ts_us <= child.ts_us);
            assert!(
                child.ts_us + child.dur_us <= parent.ts_us + parent.dur_us + 1e-3,
                "child must close before its parent"
            );
        }
    }
}

#[test]
fn chrome_trace_parses_back_with_well_formed_events() {
    let snap = isolated(|| {
        {
            let mut sp = ft_probe::span("compile", "pass.parse");
            sp.field("blocks", 4u64);
            sp.field("label", "lstm");
        }
        ft_probe::complete_event(
            "sim",
            "kernel.gemm",
            ft_probe::SIM_PID,
            0,
            125.0,
            40.0,
            vec![("dram_bytes".into(), 4096u64.into())],
        );
        ft_probe::counter("sim.dram_bytes", 4096.0);
        ft_probe::set_thread_label(ft_probe::WALL_PID, ft_probe::thread_track(), "main");
        ft_probe::take()
    });

    let trace = chrome_trace(&snap);
    let text = serde_json::to_string_pretty(&trace).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();

    let events = parsed["traceEvents"].as_array().unwrap();
    assert!(!events.is_empty());
    let mut saw_complete = 0;
    let mut saw_counter = 0;
    let mut saw_meta = 0;
    for e in events {
        let ph = e["ph"].as_str().unwrap();
        match ph {
            "X" => {
                saw_complete += 1;
                assert!(e["ts"].as_f64().unwrap() >= 0.0);
                assert!(e["dur"].as_f64().unwrap() >= 0.0);
                assert!(e["name"].as_str().is_some());
                assert!(e["pid"].as_u64().is_some());
                assert!(e["tid"].as_u64().is_some());
            }
            "C" => {
                saw_counter += 1;
                assert!(e["args"]["value"].as_f64().is_some());
            }
            "M" => saw_meta += 1,
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(saw_complete, 2);
    assert_eq!(saw_counter, 1);
    assert!(saw_meta >= 3, "two process names + one thread name");

    // The sim event kept its explicit pid and simulated timestamps.
    let sim = events
        .iter()
        .find(|e| e["name"] == "kernel.gemm")
        .expect("sim event present");
    assert_eq!(sim["pid"].as_u64(), Some(ft_probe::SIM_PID));
    assert_eq!(sim["ts"].as_f64(), Some(125.0));
    assert_eq!(sim["args"]["dram_bytes"].as_u64(), Some(4096));
}

#[test]
fn metrics_report_aggregates_spans_and_counters() {
    let snap = isolated(|| {
        for _ in 0..3 {
            let _sp = ft_probe::span("exec", "wavefront_step");
        }
        ft_probe::counter("exec.wavefront_steps", 3.0);
        ft_probe::counter("exec.wavefront_steps", 2.0);
        ft_probe::take()
    });
    let report = MetricsReport::from_snapshot(&snap).with_meta("workload", "unit");
    assert_eq!(report.counters["exec.wavefront_steps"], 5.0);
    assert_eq!(report.spans["exec/wavefront_step"].count, 3);
    let j = report.to_json();
    assert_eq!(j["meta"]["workload"], "unit");
    assert_eq!(j["counters"]["exec.wavefront_steps"], 5.0);
    assert_eq!(j["spans"]["exec/wavefront_step"]["count"], 3);
    // Round-trips through the serializer.
    let back: serde_json::Value = serde_json::from_str(&j.to_string()).unwrap();
    assert_eq!(back, j);
}

#[test]
fn disabled_probe_records_nothing_and_spans_are_inert() {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    ft_probe::disable();
    let _ = ft_probe::take();

    {
        let mut sp = ft_probe::span("t", "ignored");
        assert!(!sp.is_recording());
        sp.field("k", 1u64);
    }
    ft_probe::counter("ignored.counter", 10.0);
    ft_probe::complete_event("t", "ignored", 1, 0, 0.0, 1.0, vec![]);
    ft_probe::set_thread_label(1, 0, "ignored");

    let snap = ft_probe::take();
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.thread_labels.is_empty());
}

#[test]
fn builder_and_env_style_toggling() {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    ft_probe::builder().enabled(true).install();
    assert!(ft_probe::enabled());
    ft_probe::builder().enabled(false).install();
    assert!(!ft_probe::enabled());
    let _ = ft_probe::take();
}

#[test]
fn json_lines_rows_share_one_framing() {
    let rows = vec![
        serde_json::json!({ "a": 1, "b": "x" }),
        serde_json::json!({ "a": 2, "b": "y" }),
    ];
    let text = ft_probe::json_lines(rows);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2);
    for (i, line) in lines.iter().enumerate() {
        let v: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(v["a"], (i + 1) as u64);
    }
}
