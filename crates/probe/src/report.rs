//! The flat JSON metrics report, and the row serializer `ft-bench` shares.

use std::collections::BTreeMap;

use serde_json::{json, Map, Value};

use crate::collector::Snapshot;

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Number of completed spans.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: f64,
    /// Longest single span, microseconds.
    pub max_us: f64,
}

/// A flat metrics view of a [`Snapshot`]: counter totals plus per-span-name
/// aggregates. This is the machine-readable artifact `trace_report` writes
/// next to the Perfetto trace, and the serializer behind `ft-bench`'s
/// `--json` tables.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Counter totals by name.
    pub counters: BTreeMap<String, f64>,
    /// Span aggregates by `category/name`.
    pub spans: BTreeMap<String, SpanStat>,
    /// Free-form metadata (workload name, thread count, ...).
    pub meta: BTreeMap<String, Value>,
}

impl MetricsReport {
    /// Builds the report from a snapshot.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
        for e in &snapshot.events {
            let s = spans.entry(format!("{}/{}", e.cat, e.name)).or_default();
            s.count += 1;
            s.total_us += e.dur_us;
            s.max_us = s.max_us.max(e.dur_us);
        }
        MetricsReport {
            counters: snapshot.counters.clone(),
            spans,
            meta: BTreeMap::new(),
        }
    }

    /// Attaches a metadata entry.
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.meta.insert(key.into(), value.into());
        self
    }

    /// The report as one JSON object.
    pub fn to_json(&self) -> Value {
        let mut counters = Map::new();
        for (k, v) in &self.counters {
            counters.insert(k.clone(), Value::from(*v));
        }
        let mut spans = Map::new();
        for (k, s) in &self.spans {
            spans.insert(
                k.clone(),
                json!({
                    "count": s.count,
                    "total_us": s.total_us,
                    "max_us": s.max_us,
                }),
            );
        }
        let mut meta = Map::new();
        for (k, v) in &self.meta {
            meta.insert(k.clone(), v.clone());
        }
        json!({
            "meta": Value::Object(meta),
            "counters": Value::Object(counters),
            "spans": Value::Object(spans),
        })
    }
}

/// Serializes rows as JSON lines — one compact object per line.
///
/// This is the single row serializer shared by `trace_report` and the
/// `ft-bench` table binaries (`render_json`), so every machine-readable
/// artifact in the repo has the same framing.
pub fn json_lines<I>(rows: I) -> String
where
    I: IntoIterator<Item = Value>,
{
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_string());
        out.push('\n');
    }
    out
}
