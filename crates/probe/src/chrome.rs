//! Chrome/Perfetto `trace.json` export.

use serde_json::{json, Map, Value};

use crate::collector::Snapshot;

/// Renders a snapshot in the Chrome Trace Event format (JSON object form),
/// loadable in `chrome://tracing` and <https://ui.perfetto.dev>.
///
/// * every span becomes a complete event (`"ph": "X"`) with its structured
///   fields under `args`,
/// * counter totals become one counter sample (`"ph": "C"`) each at the
///   end of the trace,
/// * process/thread tracks get metadata names: wall-clock events live in
///   process 1 (`fractaltensor`), simulated-time events in process 2
///   (`ft-sim (modeled time)`).
pub fn chrome_trace(snapshot: &Snapshot) -> Value {
    let mut events: Vec<Value> = Vec::with_capacity(snapshot.events.len() + 16);

    events.push(meta_event("process_name", 1, 0, "fractaltensor"));
    events.push(meta_event("process_name", 2, 0, "ft-sim (modeled time)"));
    for ((pid, tid), label) in &snapshot.thread_labels {
        events.push(meta_event("thread_name", *pid, *tid, label));
    }

    let mut end_us = 0.0f64;
    for e in &snapshot.events {
        end_us = end_us.max(e.ts_us + e.dur_us);
        let mut args = Map::new();
        for (k, v) in &e.fields {
            args.insert(k.clone(), v.to_json());
        }
        events.push(json!({
            "name": &e.name,
            "cat": e.cat,
            "ph": "X",
            "ts": e.ts_us,
            "dur": e.dur_us,
            "pid": e.pid,
            "tid": e.tid,
            "args": Value::Object(args),
        }));
    }

    for (name, total) in &snapshot.counters {
        let mut sample = Map::new();
        sample.insert("value".to_string(), Value::from(*total));
        events.push(json!({
            "name": name.as_str(),
            "ph": "C",
            "ts": end_us,
            "pid": 1u64,
            "tid": 0u64,
            "args": Value::Object(sample),
        }));
    }

    json!({
        "traceEvents": Value::Array(events),
        "displayTimeUnit": "ms",
    })
}

fn meta_event(kind: &str, pid: u64, tid: u64, name: &str) -> Value {
    let mut args = Map::new();
    args.insert("name".to_string(), Value::from(name));
    json!({
        "name": kind,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "args": Value::Object(args),
    })
}
