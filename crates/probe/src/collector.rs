//! The global collector: enable state, span guards, counters, snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;

/// The `pid` used for wall-clock events (pipeline passes, executor).
pub const WALL_PID: u64 = 1;
/// The `pid` used for simulated-time events (`ft-sim` kernel launches).
/// These live on a separate Perfetto process track because their
/// timestamps are modeled microseconds, not wall-clock ones.
pub const SIM_PID: u64 = 2;

/// A structured span/field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    /// The value as JSON.
    pub fn to_json(&self) -> serde_json::Value {
        match self {
            FieldValue::I64(v) => serde_json::Value::from(*v),
            FieldValue::U64(v) => serde_json::Value::from(*v),
            FieldValue::F64(v) => serde_json::Value::from(*v),
            FieldValue::Bool(v) => serde_json::Value::from(*v),
            FieldValue::Str(v) => serde_json::Value::from(v.as_str()),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
field_from!(
    i32 => I64 as i64, i64 => I64 as i64, isize => I64 as i64,
    u32 => U64 as u64, u64 => U64 as u64, usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded complete event (Chrome `ph: "X"` shape).
#[derive(Debug, Clone)]
pub struct Event {
    /// Span name.
    pub name: String,
    /// Category: `compile`, `exec`, `sim`, ...
    pub cat: &'static str,
    /// Process track ([`WALL_PID`] or [`SIM_PID`]).
    pub pid: u64,
    /// Thread track.
    pub tid: u64,
    /// Start, microseconds since the probe epoch (or simulated µs).
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Structured fields (`args` in the Chrome trace).
    pub fields: Vec<(String, FieldValue)>,
}

/// A drained or cloned view of everything the collector holds.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Completed span events, in completion order.
    pub events: Vec<Event>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, f64>,
    /// Human labels for (pid, tid) thread tracks.
    pub thread_labels: Vec<((u64, u64), String)>,
}

#[derive(Default)]
struct Inner {
    events: Vec<Event>,
    counters: BTreeMap<String, f64>,
    thread_labels: Vec<((u64, u64), String)>,
}

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static COLLECTOR: Mutex<Option<Inner>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the probe epoch (first use). Monotonic.
pub fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Whether tracing is currently enabled.
///
/// The first call resolves the `FT_TRACE` environment variable
/// (`1`/`true`/`on` enable); afterwards this is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("FT_TRACE")
        .map(|v| matches!(v.as_str(), "1" | "true" | "TRUE" | "on"))
        .unwrap_or(false);
    set_enabled(on);
    on
}

fn set_enabled(on: bool) {
    if on {
        // Arm the epoch and the buffer before publishing the flag so a
        // racing span sees a consistent collector.
        epoch();
        let mut inner = COLLECTOR.lock();
        if inner.is_none() {
            *inner = Some(Inner::default());
        }
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Enables tracing (equivalent to `builder().enabled(true).install()`).
pub fn enable() {
    set_enabled(true);
}

/// Disables tracing. Already-recorded data is kept until [`take`].
pub fn disable() {
    set_enabled(false);
}

/// Configuration builder for the global probe.
#[derive(Debug, Default)]
pub struct ProbeBuilder {
    enabled: bool,
}

impl ProbeBuilder {
    /// Sets the enabled flag.
    pub fn enabled(mut self, on: bool) -> Self {
        self.enabled = on;
        self
    }

    /// Applies the configuration to the global probe.
    pub fn install(self) {
        set_enabled(self.enabled);
    }
}

/// Starts configuring the global probe.
pub fn builder() -> ProbeBuilder {
    ProbeBuilder::default()
}

/// An open span; records a complete event when dropped.
///
/// Obtained from [`span`]. When tracing is disabled the guard is inert:
/// no clock is read, no allocation happens, and [`SpanGuard::field`]
/// discards its arguments.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    cat: &'static str,
    tid: u64,
    start_us: f64,
    fields: Vec<(String, FieldValue)>,
}

impl SpanGuard {
    /// Whether this span is live (tracing was enabled when it opened).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a key-value field.
    pub fn field(&mut self, key: impl Into<String>, value: impl Into<FieldValue>) {
        if let Some(a) = self.active.as_mut() {
            a.fields.push((key.into(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let dur_us = now_us() - a.start_us;
            record(Event {
                name: a.name.to_string(),
                cat: a.cat,
                pid: WALL_PID,
                tid: a.tid,
                ts_us: a.start_us,
                dur_us,
                fields: a.fields,
            });
        }
    }
}

/// Opens a span on the current thread's wall-clock track.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            cat,
            tid: current_tid(),
            start_us: now_us(),
            fields: Vec::new(),
        }),
    }
}

/// Records an already-measured interval, e.g. on an explicit worker or
/// simulated-time track. No-op when disabled.
#[allow(clippy::too_many_arguments)]
pub fn complete_event(
    cat: &'static str,
    name: impl Into<String>,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    fields: Vec<(String, FieldValue)>,
) {
    if !enabled() {
        return;
    }
    record(Event {
        name: name.into(),
        cat,
        pid,
        tid,
        ts_us,
        dur_us,
        fields,
    });
}

/// Adds `delta` to the named counter. No-op when disabled.
pub fn counter(name: &str, delta: f64) {
    if !enabled() {
        return;
    }
    let mut inner = COLLECTOR.lock();
    let inner = inner.get_or_insert_with(Inner::default);
    *inner.counters.entry(name.to_string()).or_insert(0.0) += delta;
}

/// Names a (pid, tid) track in the exported trace. No-op when disabled.
pub fn set_thread_label(pid: u64, tid: u64, label: impl Into<String>) {
    if !enabled() {
        return;
    }
    let mut inner = COLLECTOR.lock();
    let inner = inner.get_or_insert_with(Inner::default);
    let label = label.into();
    if !inner.thread_labels.iter().any(|(k, _)| *k == (pid, tid)) {
        inner.thread_labels.push(((pid, tid), label));
    }
}

/// The tid the probe assigned to the calling thread.
pub fn thread_track() -> u64 {
    current_tid()
}

fn record(e: Event) {
    let mut inner = COLLECTOR.lock();
    inner.get_or_insert_with(Inner::default).events.push(e);
}

/// Clones the collector contents without draining them.
pub fn snapshot() -> Snapshot {
    let inner = COLLECTOR.lock();
    match inner.as_ref() {
        Some(i) => Snapshot {
            events: i.events.clone(),
            counters: i.counters.clone(),
            thread_labels: i.thread_labels.clone(),
        },
        None => Snapshot::default(),
    }
}

/// Drains and returns everything recorded so far.
pub fn take() -> Snapshot {
    let mut inner = COLLECTOR.lock();
    match inner.as_mut() {
        Some(i) => Snapshot {
            events: std::mem::take(&mut i.events),
            counters: std::mem::take(&mut i.counters),
            thread_labels: std::mem::take(&mut i.thread_labels),
        },
        None => Snapshot::default(),
    }
}
