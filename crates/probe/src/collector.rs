//! The global collector: enable state, span guards, counters, snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// The `pid` used for wall-clock events (pipeline passes, executor).
pub const WALL_PID: u64 = 1;
/// The `pid` used for simulated-time events (`ft-sim` kernel launches).
/// These live on a separate Perfetto process track because their
/// timestamps are modeled microseconds, not wall-clock ones.
pub const SIM_PID: u64 = 2;

/// A structured span/field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    /// The value as JSON.
    pub fn to_json(&self) -> serde_json::Value {
        match self {
            FieldValue::I64(v) => serde_json::Value::from(*v),
            FieldValue::U64(v) => serde_json::Value::from(*v),
            FieldValue::F64(v) => serde_json::Value::from(*v),
            FieldValue::Bool(v) => serde_json::Value::from(*v),
            FieldValue::Str(v) => serde_json::Value::from(v.as_str()),
        }
    }
}

macro_rules! field_from {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
field_from!(
    i32 => I64 as i64, i64 => I64 as i64, isize => I64 as i64,
    u32 => U64 as u64, u64 => U64 as u64, usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded complete event (Chrome `ph: "X"` shape).
#[derive(Debug, Clone)]
pub struct Event {
    /// Span name.
    pub name: String,
    /// Category: `compile`, `exec`, `sim`, ...
    pub cat: &'static str,
    /// Process track ([`WALL_PID`] or [`SIM_PID`]).
    pub pid: u64,
    /// Thread track.
    pub tid: u64,
    /// Start, microseconds since the probe epoch (or simulated µs).
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
    /// Structured fields (`args` in the Chrome trace).
    pub fields: Vec<(String, FieldValue)>,
}

/// A drained or cloned view of everything the collector holds.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Completed span events, in completion order.
    pub events: Vec<Event>,
    /// Counter totals by name.
    pub counters: BTreeMap<String, f64>,
    /// Human labels for (pid, tid) thread tracks.
    pub thread_labels: Vec<((u64, u64), String)>,
}

/// One thread's private slice of the collector. Each recording thread
/// owns a shard behind its own mutex; the hot path (span drop, counter
/// bump) locks only that shard, which is uncontended in steady state —
/// the global registry lock is taken once per thread lifetime (at shard
/// registration) and on merge ([`snapshot`]/[`take`]), never per event.
#[derive(Default)]
struct Shard {
    events: Vec<Event>,
    counters: BTreeMap<String, f64>,
    thread_labels: Vec<((u64, u64), String)>,
}

/// Every live (and not-yet-drained dead) shard, in registration order.
/// Merge order follows registration order so events recorded by a single
/// thread keep their completion order in the merged snapshot.
static SHARDS: Mutex<Vec<Arc<Mutex<Shard>>>> = Mutex::new(Vec::new());

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    // The shard outlives the thread: the registry holds a second Arc, so
    // data recorded by a thread that exited is still merged by take().
    static SHARD: Arc<Mutex<Shard>> = {
        let shard = Arc::new(Mutex::new(Shard::default()));
        SHARDS.lock().push(Arc::clone(&shard));
        shard
    };
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Runs `f` under the calling thread's shard lock.
fn with_shard<R>(f: impl FnOnce(&mut Shard) -> R) -> R {
    SHARD.with(|s| f(&mut s.lock()))
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the probe epoch (first use). Monotonic.
pub fn now_us() -> f64 {
    epoch().elapsed().as_secs_f64() * 1e6
}

/// Whether tracing is currently enabled.
///
/// The first call resolves the `FT_TRACE` environment variable
/// (`1`/`true`/`on` enable); afterwards this is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("FT_TRACE")
        .map(|v| matches!(v.as_str(), "1" | "true" | "TRUE" | "on"))
        .unwrap_or(false);
    set_enabled(on);
    on
}

fn set_enabled(on: bool) {
    if on {
        // Arm the epoch before publishing the flag so a racing span sees
        // a consistent clock. Shards materialize lazily per thread.
        epoch();
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Enables tracing (equivalent to `builder().enabled(true).install()`).
pub fn enable() {
    set_enabled(true);
}

/// Disables tracing. Already-recorded data is kept until [`take`].
pub fn disable() {
    set_enabled(false);
}

/// Configuration builder for the global probe.
#[derive(Debug, Default)]
pub struct ProbeBuilder {
    enabled: bool,
}

impl ProbeBuilder {
    /// Sets the enabled flag.
    pub fn enabled(mut self, on: bool) -> Self {
        self.enabled = on;
        self
    }

    /// Applies the configuration to the global probe.
    pub fn install(self) {
        set_enabled(self.enabled);
    }
}

/// Starts configuring the global probe.
pub fn builder() -> ProbeBuilder {
    ProbeBuilder::default()
}

/// An open span; records a complete event when dropped.
///
/// Obtained from [`span`]. When tracing is disabled the guard is inert:
/// no clock is read, no allocation happens, and [`SpanGuard::field`]
/// discards its arguments.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    cat: &'static str,
    tid: u64,
    start_us: f64,
    fields: Vec<(String, FieldValue)>,
}

impl SpanGuard {
    /// Whether this span is live (tracing was enabled when it opened).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a key-value field.
    pub fn field(&mut self, key: impl Into<String>, value: impl Into<FieldValue>) {
        if let Some(a) = self.active.as_mut() {
            a.fields.push((key.into(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let dur_us = now_us() - a.start_us;
            record(Event {
                name: a.name.to_string(),
                cat: a.cat,
                pid: WALL_PID,
                tid: a.tid,
                ts_us: a.start_us,
                dur_us,
                fields: a.fields,
            });
        }
    }
}

/// Opens a span on the current thread's wall-clock track.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    SpanGuard {
        active: Some(ActiveSpan {
            name,
            cat,
            tid: current_tid(),
            start_us: now_us(),
            fields: Vec::new(),
        }),
    }
}

/// Records an already-measured interval, e.g. on an explicit worker or
/// simulated-time track. No-op when disabled.
#[allow(clippy::too_many_arguments)]
pub fn complete_event(
    cat: &'static str,
    name: impl Into<String>,
    pid: u64,
    tid: u64,
    ts_us: f64,
    dur_us: f64,
    fields: Vec<(String, FieldValue)>,
) {
    if !enabled() {
        return;
    }
    record(Event {
        name: name.into(),
        cat,
        pid,
        tid,
        ts_us,
        dur_us,
        fields,
    });
}

/// Adds `delta` to the named counter. No-op when disabled.
///
/// Counters accumulate in the calling thread's shard (no cross-thread
/// contention) and are summed across shards on [`snapshot`]/[`take`].
/// The steady-state path allocates nothing: an existing entry is bumped
/// through `get_mut`, and the name is only cloned on first use per shard.
pub fn counter(name: &str, delta: f64) {
    if !enabled() {
        return;
    }
    with_shard(|s| {
        if let Some(v) = s.counters.get_mut(name) {
            *v += delta;
        } else {
            s.counters.insert(name.to_string(), delta);
        }
    });
}

/// Names a (pid, tid) track in the exported trace. No-op when disabled.
/// Duplicate registrations (from any thread) keep the first label.
pub fn set_thread_label(pid: u64, tid: u64, label: impl Into<String>) {
    if !enabled() {
        return;
    }
    let label = label.into();
    with_shard(|s| {
        if !s.thread_labels.iter().any(|(k, _)| *k == (pid, tid)) {
            s.thread_labels.push(((pid, tid), label));
        }
    });
}

/// The tid the probe assigned to the calling thread.
pub fn thread_track() -> u64 {
    current_tid()
}

fn record(e: Event) {
    with_shard(|s| s.events.push(e));
}

fn merge(drain: bool) -> Snapshot {
    let mut out = Snapshot::default();
    let mut shards = SHARDS.lock();
    for shard in shards.iter() {
        let mut s = shard.lock();
        if drain {
            out.events.append(&mut s.events);
            for (k, v) in std::mem::take(&mut s.counters) {
                *out.counters.entry(k).or_insert(0.0) += v;
            }
            let labels = std::mem::take(&mut s.thread_labels);
            for (k, label) in labels {
                if !out.thread_labels.iter().any(|(ok, _)| *ok == k) {
                    out.thread_labels.push((k, label));
                }
            }
        } else {
            out.events.extend(s.events.iter().cloned());
            for (k, v) in &s.counters {
                *out.counters.entry(k.clone()).or_insert(0.0) += v;
            }
            for (k, label) in &s.thread_labels {
                if !out.thread_labels.iter().any(|(ok, _)| ok == k) {
                    out.thread_labels.push((*k, label.clone()));
                }
            }
        }
    }
    if drain {
        // Drop shards whose owning thread exited (the registry holds the
        // only remaining Arc) so churning threads don't grow the list.
        shards.retain(|s| Arc::strong_count(s) > 1);
    }
    out
}

/// Clones the collector contents without draining them, merging every
/// thread's shard. Per-thread event order is preserved; shards are
/// concatenated in registration order.
pub fn snapshot() -> Snapshot {
    merge(false)
}

/// Drains and returns everything recorded so far across all shards.
pub fn take() -> Snapshot {
    merge(true)
}
