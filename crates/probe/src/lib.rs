//! # ft-probe
//!
//! A lightweight span/counter facility for the FractalTensor reproduction:
//! the observability layer under the compile pipeline (`ft-passes`), the
//! wavefront executor (`ft-backend`) and the tile-machine simulator
//! (`ft-sim`).
//!
//! ## Model
//!
//! * **Spans** are named intervals with structured key-value [`FieldValue`]
//!   fields and monotonic microsecond timestamps, recorded as *complete*
//!   events when the [`SpanGuard`] drops. Spans on the same thread nest by
//!   interval containment, which is exactly how Perfetto stacks them.
//! * **Counters** are named `f64` accumulators (`passes.access_map_fusions`,
//!   `exec.wavefront_steps`, `sim.dram_bytes`, ...). They carry totals, not
//!   samples — per-event detail lives on span fields.
//! * The collector is sharded per thread: each recording thread appends
//!   to its own mutex-guarded shard (uncontended in steady state), and
//!   [`snapshot`]/[`take`] merge the shards. The hot-path check is a
//!   single relaxed atomic load, so with tracing disabled every probe
//!   call is a no-op costing one branch; with tracing enabled the cost
//!   is one uncontended lock plus the record itself.
//!
//! ## Enabling
//!
//! Tracing is off by default. Turn it on either with the environment
//! variable `FT_TRACE=1` (read lazily on the first probe call) or
//! programmatically via the builder:
//!
//! ```
//! ft_probe::builder().enabled(true).install();
//! {
//!     let mut span = ft_probe::span("compile", "pass.parse");
//!     span.field("blocks", 4u64);
//! }
//! ft_probe::counter("exec.wavefront_steps", 1.0);
//! let snap = ft_probe::take();
//! assert_eq!(snap.events.len(), 1);
//! ft_probe::builder().enabled(false).install();
//! ```
//!
//! ## Exporters
//!
//! [`chrome_trace`] renders a snapshot as a Chrome/Perfetto `trace.json`
//! (open in <https://ui.perfetto.dev> or `chrome://tracing`); the
//! [`report`] module renders the same snapshot as a flat JSON metrics
//! report whose row serializer `ft-bench` shares for its tables.

#![forbid(unsafe_code)]

mod chrome;
mod collector;
pub mod report;

pub use chrome::chrome_trace;
pub use collector::{
    builder, complete_event, counter, disable, enable, enabled, now_us, set_thread_label, snapshot,
    span, take, thread_track, Event, FieldValue, ProbeBuilder, Snapshot, SpanGuard, SIM_PID,
    WALL_PID,
};
pub use report::{json_lines, MetricsReport, SpanStat};
