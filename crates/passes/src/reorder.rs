//! Access reordering (paper §5.2): constructing the unimodular
//! transformation matrix.
//!
//! The framework: FractalTensor nests are *fully permutable* (functional
//! operators + single assignment + constant dependence distances), so a
//! single transformed dimension can carry every dependence. The first row
//! of `T` is a Lamport-hyperplane schedule `π(t) = a·t` with `a·δ ≥ 1` for
//! every distance vector `δ`; the remaining rows keep the other dimensions,
//! with dimensions carrying data reuse (null-space analysis of the access
//! matrices) interchanged innermost. Loop bounds for the transformed space
//! come from Fourier–Motzkin elimination — reproducing Figure 6 and
//! Table 5 for the running example.

use ft_affine::{AffineMap, ConstraintSet, IntMat, LoopBounds};
use ft_etdg::{BlockId, Etdg, RegionRead};

use crate::depend::distance_vectors;
use crate::{PassError, Result};

/// The result of reordering one block (or merged group of blocks).
#[derive(Debug, Clone)]
pub struct Reordering {
    /// The unimodular transformation `j = T·t`.
    pub t: IntMat,
    /// Its inverse (`t = T⁻¹·j`).
    pub t_inv: IntMat,
    /// The hyperplane schedule occupying row 0 (empty when no deps).
    pub hyperplane: Vec<i64>,
    /// Dimensions of the *original* space found to carry data reuse.
    pub reuse_dims: Vec<usize>,
    /// Number of leading sequential dimensions after transformation
    /// (0 for a pure map nest, otherwise 1 — the fully-permutable
    /// guarantee).
    pub sequential_dims: usize,
    /// The transformed iteration domain of the block's rectangular hull.
    pub domain: ConstraintSet,
    /// Loop bounds of the transformed hull, outermost first.
    pub bounds: Vec<LoopBounds>,
}

impl Reordering {
    /// Maps a transformed point `j` back to the original iteration vector.
    pub fn to_original(&self, j: &[i64]) -> Result<Vec<i64>> {
        self.t_inv.matvec(j).map_err(PassError::from)
    }

    /// Transforms an access map into the reordered space
    /// (`i = (M·T⁻¹)·j + o`).
    pub fn transform_map(&self, map: &AffineMap) -> Result<AffineMap> {
        map.transform_by(&self.t).map_err(PassError::from)
    }

    /// The wavefront range `[lo, hi)` of the sequential dimension (the
    /// whole domain is one parallel step when there is none).
    pub fn wavefront_range(&self) -> (i64, i64) {
        if self.sequential_dims == 0 {
            (0, 1)
        } else {
            let lb = &self.bounds[0];
            (lb.eval_lower(&[]), lb.eval_upper_exclusive(&[]))
        }
    }
}

/// Reorders a single block node.
pub fn reorder_block(etdg: &Etdg, id: BlockId) -> Result<Reordering> {
    let distances = distance_vectors(etdg, id)?;
    let block = etdg.block(id);
    let reads: Vec<&AffineMap> = block.reads.iter().filter_map(RegionRead::map).collect();
    reorder_with(
        block.dims(),
        &block.extents,
        &distances,
        &reads,
        &block.name,
    )
}

/// Reorders a group of merged blocks sharing one iteration space: the
/// distances and reuse analysis take the union over members.
pub fn reorder_group(etdg: &Etdg, members: &[BlockId]) -> Result<Reordering> {
    let first = etdg.block(members[0]);
    let mut distances: Vec<Vec<i64>> = Vec::new();
    let mut reads: Vec<&AffineMap> = Vec::new();
    for &m in members {
        for d in distance_vectors(etdg, m)? {
            if !distances.contains(&d) {
                distances.push(d);
            }
        }
        reads.extend(etdg.block(m).reads.iter().filter_map(RegionRead::map));
    }
    reorder_with(
        first.dims(),
        &first.extents,
        &distances,
        &reads,
        &first.name,
    )
}

fn reorder_with(
    d: usize,
    extents: &[usize],
    distances: &[Vec<i64>],
    reads: &[&AffineMap],
    name: &str,
) -> Result<Reordering> {
    let hull = ConstraintSet::from_box(
        &vec![0i64; d],
        &extents.iter().map(|&e| e as i64).collect::<Vec<_>>(),
    )?;

    // Data-reuse detection: a dimension carries reuse when some access
    // matrix's null space has a basis vector touching it (§5.2).
    // Dimensions that carry dependencies are excluded — they are not free
    // to interchange inward, and the paper's worked example likewise counts
    // only the batch and hidden dimensions of Γ₄¹ as reuse carriers.
    let mut dep_dim = vec![false; d];
    for delta in distances {
        for (i, &v) in delta.iter().enumerate() {
            if v != 0 {
                dep_dim[i] = true;
            }
        }
    }
    let mut reuse = vec![false; d];
    for map in reads {
        for basis in map.reuse_directions() {
            for (k, &v) in basis.iter().enumerate() {
                if v != 0 && !dep_dim[k] {
                    reuse[k] = true;
                }
            }
        }
    }
    let reuse_dims: Vec<usize> = (0..d).filter(|&k| reuse[k]).collect();

    if distances.is_empty() {
        // Pure data parallelism: identity transform, zero sequential dims.
        let t = IntMat::identity(d);
        let bounds = hull.loop_bounds()?;
        return Ok(Reordering {
            t_inv: t.clone(),
            t,
            hyperplane: Vec::new(),
            reuse_dims,
            sequential_dims: 0,
            domain: hull,
            bounds,
        });
    }

    // Hyperplane: a_i = ±1 on every dimension touched by a dependence,
    // signed by the dependence direction (a right scan's distance points
    // toward smaller indices, so its coefficient is -1). A dimension with
    // dependences in both directions cannot be carried by one hyperplane.
    let mut a = vec![0i64; d];
    for delta in distances {
        for (i, &v) in delta.iter().enumerate() {
            if v != 0 {
                let sign = v.signum();
                if a[i] != 0 && a[i] != sign {
                    return Err(PassError::Illegal(format!(
                        "{name}: dimension {i} carries dependences in both \
                         directions"
                    )));
                }
                a[i] = sign;
            }
        }
    }
    for delta in distances {
        let dot: i64 = a.iter().zip(delta.iter()).map(|(x, y)| x * y).sum();
        if dot < 1 {
            return Err(PassError::Illegal(format!(
                "{name}: hyperplane {a:?} does not carry distance {delta:?}"
            )));
        }
    }

    let dep_dims: Vec<usize> = (0..d).filter(|&i| a[i] != 0).collect();
    let t = build_transform(d, &a, &dep_dims, &reuse)?;

    // Legality: the sequential dimension must strictly carry every
    // distance ((T·δ)[0] >= 1) — lex-positivity alone is not enough
    // because the inner dimensions execute concurrently within a step.
    for delta in distances {
        let td = t.matvec(delta)?;
        if td[0] < 1 {
            return Err(PassError::Illegal(format!(
                "{name}: transformed distance {td:?} not carried by the \
                 wavefront dimension"
            )));
        }
    }

    let t_inv = t.inverse_unimodular()?;
    let domain = hull.transform_by(&t)?;
    let bounds = domain.loop_bounds()?;
    Ok(Reordering {
        t,
        t_inv,
        hyperplane: a,
        reuse_dims,
        sequential_dims: 1,
        domain,
        bounds,
    })
}

/// Builds `T`: row 0 is the hyperplane; the remaining rows are unit vectors
/// of all dimensions except one dropped dependence dimension, ordered with
/// non-reuse dimensions outer and reuse dimensions inner ("interchanged as
/// inner dimensions to enhance data locality", with a minimal number of
/// interchanges). Falls back to general unimodular completion if no unit
/// row selection is unimodular.
fn build_transform(d: usize, a: &[i64], dep_dims: &[usize], reuse: &[bool]) -> Result<IntMat> {
    // Prefer dropping the innermost dependence dimension (Figure 6 drops
    // t3, the inner scan, keeping the fold dimension as an explicit row).
    for &drop in dep_dims.iter().rev() {
        if a[drop] == 0 {
            continue;
        }
        let kept: Vec<usize> = (0..d).filter(|&k| k != drop).collect();
        let mut ordered: Vec<usize> = kept.iter().copied().filter(|&k| !reuse[k]).collect();
        ordered.extend(kept.iter().copied().filter(|&k| reuse[k]));
        let mut rows = vec![a.to_vec()];
        for k in ordered {
            let mut e = vec![0i64; d];
            e[k] = 1;
            rows.push(e);
        }
        let t = IntMat::from_rows(&rows)?;
        if t.is_unimodular() {
            return Ok(t);
        }
    }
    // General completion (first row = a) as a fallback.
    IntMat::complete_unimodular(a).map_err(PassError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_etdg::parse_program;
    use proptest::prelude::*;

    /// Hand-built Γ₄¹ of Figure 5: the width-coarsened running example with
    /// p⃗ = [map, foldl, scanl, map] over (batch, depth, seq, hidden).
    fn gamma4(
        n: i64,
        big_d: i64,
        big_l: i64,
        h: i64,
    ) -> (Vec<Vec<i64>>, Vec<AffineMap>, Vec<usize>) {
        // Distances d1 = depth, d2 = seq (§5.2).
        let distances = vec![vec![0, 1, 0, 0], vec![0, 0, 1, 0]];
        // Access matrices of e12..e15 (pre-transform).
        let m12 = AffineMap::new(
            IntMat::from_rows(&[vec![1, 0, 0, 0], vec![0, 1, 0, 0], vec![0, 0, 1, 0]]).unwrap(),
            vec![0, -1, 0],
        )
        .unwrap();
        let m13 = AffineMap::shifted_identity(4, vec![0, 0, -1, 0]).unwrap();
        let m14 = AffineMap::new(IntMat::from_rows(&[vec![0, 1, 0, 0]]).unwrap(), vec![0]).unwrap();
        let m15 = AffineMap::identity(4);
        let extents = vec![n as usize, big_d as usize, big_l as usize, h as usize];
        (distances, vec![m12, m13, m14, m15], extents)
    }

    #[test]
    fn figure6_transformation_matrix() {
        let (distances, maps, extents) = gamma4(2, 3, 4, 8);
        let reads: Vec<&AffineMap> = maps.iter().collect();
        let r = reorder_with(4, &extents, &distances, &reads, "gamma4").unwrap();
        // The exact matrix of Figure 6.
        let expected = IntMat::from_rows(&[
            vec![0, 1, 1, 0],
            vec![0, 1, 0, 0],
            vec![1, 0, 0, 0],
            vec![0, 0, 0, 1],
        ])
        .unwrap();
        assert_eq!(r.t, expected);
        assert_eq!(r.hyperplane, vec![0, 1, 1, 0]);
        assert_eq!(r.sequential_dims, 1);
        // Reuse dims found by null-space analysis: batch (from e12/e14) and
        // hidden (from e12/e14) — the §5.2 worked example.
        assert_eq!(r.reuse_dims, vec![0, 3]);
    }

    #[test]
    fn table5_transformed_access_maps() {
        let (distances, maps, extents) = gamma4(2, 3, 4, 8);
        let reads: Vec<&AffineMap> = maps.iter().collect();
        let r = reorder_with(4, &extents, &distances, &reads, "gamma4").unwrap();
        // e12 transformed: Table 5's matrix [[0,0,1,0],[0,1,0,0],[1,-1,0,0]]
        // with offset [0,-1,0].
        let e12t = r.transform_map(&maps[0]).unwrap();
        assert_eq!(
            e12t.matrix(),
            &IntMat::from_rows(&[vec![0, 0, 1, 0], vec![0, 1, 0, 0], vec![1, -1, 0, 0],]).unwrap()
        );
        assert_eq!(e12t.offset(), &[0, -1, 0]);
        // e14 transformed: [0 1 0 0].
        let e14t = r.transform_map(&maps[2]).unwrap();
        assert_eq!(
            e14t.matrix(),
            &IntMat::from_rows(&[vec![0, 1, 0, 0]]).unwrap()
        );
        // e15 transformed: Table 5's 4-row matrix.
        let e15t = r.transform_map(&maps[3]).unwrap();
        assert_eq!(
            e15t.matrix(),
            &IntMat::from_rows(&[
                vec![0, 0, 1, 0],
                vec![0, 1, 0, 0],
                vec![1, -1, 0, 0],
                vec![0, 0, 0, 1],
            ])
            .unwrap()
        );
    }

    #[test]
    fn table5_range_constraints() {
        // With N=2, D=3, L=4, H=8 the transformed bounds must evaluate to
        // Table 5's ranges: j5 in [2, L+D-1), j4 in
        // [max(1, j5-L+1), min(j5, D)).
        let (n, big_d, big_l, h) = (2i64, 3i64, 4i64, 8i64);
        let (distances, maps, extents) = gamma4(n, big_d, big_l, h);
        // Interior domain: d >= 1, l >= 1 (region3's hull restriction).
        let reads: Vec<&AffineMap> = maps.iter().collect();
        let r = reorder_with(4, &extents, &distances, &reads, "gamma4").unwrap();
        // The transformed *hull* outer bound: j5 = d + l over [0,D) x [0,L)
        // ranges in [0, D+L-1); restricted to the interior region it is
        // [2, D+L-1) as in Table 5. Check the interior case explicitly.
        let mut interior = ConstraintSet::from_box(&[0, 1, 1, 0], &[n, big_d, big_l, h]).unwrap();
        interior = interior.transform_by(&r.t).unwrap();
        let bounds = interior.loop_bounds().unwrap();
        assert_eq!(bounds[0].eval_lower(&[]), 2);
        assert_eq!(bounds[0].eval_upper_exclusive(&[]), big_l + big_d - 1);
        // j4 (the depth dim) at j5 = 2: [max(1, 2-L+1), min(2, D)) = [1, 2).
        assert_eq!(bounds[1].eval_lower(&[2, 0, 0, 0]), 1);
        assert_eq!(bounds[1].eval_upper_exclusive(&[2, 0, 0, 0]), 2);
        // At j5 = 5 (= L+D-2): [max(1, 5-3), min(5, 3)) = [2, 3).
        assert_eq!(bounds[1].eval_lower(&[5, 0, 0, 0]), 2);
        assert_eq!(bounds[1].eval_upper_exclusive(&[5, 0, 0, 0]), 3);
    }

    #[test]
    fn running_example_region3_reorders_to_wavefront() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        let r = reorder_block(&g, BlockId(3)).unwrap();
        assert_eq!(r.sequential_dims, 1);
        assert_eq!(r.hyperplane, vec![0, 1, 1]);
        // Batch is a reuse dim (weights invariant across it).
        assert!(r.reuse_dims.contains(&0));
        // Round trip: T^{-1} (T t) = t.
        for t in [[0i64, 1, 1], [1, 2, 3]] {
            let j = r.t.matvec(&t).unwrap();
            assert_eq!(r.to_original(&j).unwrap(), t.to_vec());
        }
    }

    #[test]
    fn pure_map_nest_needs_no_sequential_dim() {
        let r = reorder_with(2, &[4, 5], &[], &[], "maps").unwrap();
        assert_eq!(r.sequential_dims, 0);
        assert_eq!(r.t, IntMat::identity(2));
        assert_eq!(r.wavefront_range(), (0, 1));
    }

    #[test]
    fn transformed_points_biject_with_original() {
        let (distances, maps, extents) = gamma4(2, 3, 4, 2);
        let reads: Vec<&AffineMap> = maps.iter().collect();
        let r = reorder_with(4, &extents, &distances, &reads, "gamma4").unwrap();
        let points = r.domain.enumerate().unwrap();
        let total: usize = extents.iter().product();
        assert_eq!(points.len(), total);
        // Every transformed point maps back inside the hull.
        for j in &points {
            let t = r.to_original(j).unwrap();
            for (v, &e) in t.iter().zip(extents.iter()) {
                assert!(*v >= 0 && (*v as usize) < e, "{t:?} outside hull");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_schedule_is_legal(
            d in 2usize..5,
            dep_mask in 1u8..15,
            seed in 0u64..100,
        ) {
            // Random subset of dims carries unit distances (scan-like) and
            // occasionally a strided distance.
            let mut distances = Vec::new();
            for i in 0..d {
                if dep_mask & (1 << i) != 0 {
                    let mut delta = vec![0i64; d];
                    delta[i] = 1 + (seed % 3) as i64;
                    distances.push(delta);
                }
            }
            prop_assume!(!distances.is_empty());
            let extents = vec![3usize; d];
            let r = reorder_with(d, &extents, &distances, &[], "prop").unwrap();
            // The transform is unimodular and every distance becomes
            // lex-positive with its first component >= 1 (carried by the
            // single sequential dim).
            prop_assert!(r.t.is_unimodular());
            for delta in &distances {
                let td = r.t.matvec(delta).unwrap();
                prop_assert!(td[0] >= 1, "distance {delta:?} -> {td:?}");
            }
            // Point count is preserved.
            let pts = r.domain.enumerate().unwrap();
            prop_assert_eq!(pts.len(), extents.iter().product::<usize>());
        }
    }
}
