//! The end-to-end compile pipeline: parse → access-map fusion → width-wise
//! coarsening → per-group reordering. The result is everything a backend
//! needs to execute or emit code.

use ft_core::Program;
use ft_etdg::{parse_program, BlockId, Etdg, RegionRead};

use crate::coarsen::{coarsen, CoarsePlan};
use crate::layout::{plan_memory, MemoryPlan};
use crate::reorder::{reorder_group, Reordering};
use crate::Result;

/// One launch group with its reordered schedule.
#[derive(Debug, Clone)]
pub struct ScheduledGroup {
    /// Member block nodes (region order: producers of carried values
    /// first).
    pub members: Vec<BlockId>,
    /// The composed operator vector.
    pub ops: Vec<ft_core::OpKind>,
    /// The unimodular reordering (identity with zero sequential dims for
    /// pure map groups).
    pub reordering: Reordering,
}

impl ScheduledGroup {
    /// Number of wavefront steps this group executes sequentially.
    pub fn wavefront_steps(&self) -> i64 {
        let (lo, hi) = self.reordering.wavefront_range();
        hi - lo
    }
}

/// A fully analyzed program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The coarsened graph (copies eliminated).
    pub etdg: Etdg,
    /// The coarsening decisions.
    pub plan: CoarsePlan,
    /// Scheduled groups in execution order.
    pub groups: Vec<ScheduledGroup>,
    /// Flat buffer layouts + arena placement from the lifetime analysis.
    pub memory: MemoryPlan,
}

impl CompiledProgram {
    /// Summary line used by examples and the bench harness.
    pub fn summary(&self) -> String {
        let seqs: Vec<String> = self
            .groups
            .iter()
            .map(|g| {
                format!(
                    "{}[{} member(s), {} step(s)]",
                    self.etdg.block(g.members[0]).name,
                    g.members.len(),
                    g.wavefront_steps()
                )
            })
            .collect();
        format!(
            "{}: {} block(s) -> {} launch group(s): {}",
            self.etdg.name,
            self.etdg.blocks.len(),
            self.groups.len(),
            seqs.join(", ")
        )
    }
}

/// Compiles a program through the full §5.1–§5.2 pipeline.
///
/// # Examples
///
/// ```
/// use ft_core::builders::stacked_rnn_program;
/// use ft_passes::compile;
///
/// // Listing 1's stacked RNN: batch 2, depth 3, length 4, hidden 8.
/// let compiled = compile(&stacked_rnn_program(2, 3, 4, 8)).unwrap();
/// // The four boundary regions fuse into one wavefront launch group with
/// // depth + length - 1 sequential steps.
/// assert_eq!(compiled.groups.len(), 1);
/// assert_eq!(compiled.groups[0].wavefront_steps(), 6);
/// ```
pub fn compile(program: &Program) -> Result<CompiledProgram> {
    let mut root = ft_probe::span("compile", "compile");
    root.field("program", program.name.as_str());

    let (etdg, plan, groups) = compile_scheduled(program)?;
    let memory = {
        let mut s = ft_probe::span("compile", "pass.layout");
        let memory = plan_memory(&etdg, &groups);
        if s.is_recording() {
            s.field("arena_len", memory.arena_len);
            s.field("reused_ranges", memory.reused_ranges);
            ft_probe::counter("passes.arena_len", memory.arena_len as f64);
            ft_probe::counter("passes.arena_reused_ranges", memory.reused_ranges as f64);
        }
        memory
    };

    root.field("launch_groups", groups.len());
    Ok(CompiledProgram {
        etdg,
        plan,
        groups,
        memory,
    })
}

/// The structure passes only — parse → coarsen → UDF fusion → per-group
/// reordering — without the memory planner. Shared between [`compile`]
/// (which follows with the concrete `plan_memory`) and shape-polymorphic
/// instantiation (`crate::poly`), which takes its memory plan from an
/// evaluated symbolic template instead.
pub(crate) fn compile_scheduled(
    program: &Program,
) -> Result<(Etdg, CoarsePlan, Vec<ScheduledGroup>)> {
    let parsed = {
        let mut s = ft_probe::span("compile", "pass.parse");
        let parsed = parse_program(program)?;
        if s.is_recording() {
            s.field("blocks", parsed.blocks.len());
            s.field("buffers", parsed.buffers.len());
            s.field("edges", graph_edges(&parsed));
        }
        parsed
    };

    let (mut etdg, plan) = {
        let mut s = ft_probe::span("compile", "pass.coarsen");
        let (blocks_before, edges_before) = (parsed.blocks.len(), graph_edges(&parsed));
        let (etdg, plan) = coarsen(&parsed)?;
        if s.is_recording() {
            let (blocks_after, edges_after) = (etdg.blocks.len(), graph_edges(&etdg));
            // Members fused into an existing group = launches eliminated.
            let fusions: usize = plan
                .groups
                .iter()
                .map(|g| g.members.len().saturating_sub(1))
                .sum();
            s.field("blocks_before", blocks_before);
            s.field("blocks_after", blocks_after);
            s.field("edges_before", edges_before);
            s.field("edges_after", edges_after);
            s.field("launch_groups", plan.launch_count());
            s.field("access_map_fusions", fusions);
            ft_probe::counter(
                "passes.etdg_node_delta",
                blocks_after as f64 - blocks_before as f64,
            );
            ft_probe::counter(
                "passes.etdg_edge_delta",
                edges_after as f64 - edges_before as f64,
            );
            ft_probe::counter("passes.access_map_fusions", fusions as f64);
            ft_probe::counter("passes.launch_groups", plan.launch_count() as f64);
        }
        (etdg, plan)
    };

    {
        // UDF-level kernel fusion: SiLU peephole, GEMM epilogue
        // absorption, elementwise-chain collapse. Rewrites block UDFs in
        // place; block reads/writes and the group structure are untouched,
        // so reordering and layout below see the same graph shape. The
        // backend's scratch planner allocates nothing for fused-away
        // intermediates — their statements no longer exist.
        let mut s = ft_probe::span("compile", "pass.fusion");
        let fs = crate::fusion::fuse_graph(&mut etdg);
        if s.is_recording() {
            s.field("applied", fs.applied);
            s.field("rejected", fs.rejected);
            s.field("tmp_elems_saved", fs.tmp_elems_saved);
        }
        ft_probe::counter("passes.fusion_applied", fs.applied as f64);
        ft_probe::counter("passes.fusion_rejected", fs.rejected as f64);
        ft_probe::counter("passes.fusion_tmp_elems_saved", fs.tmp_elems_saved as f64);
        let reg = ft_obs::Registry::global();
        reg.counter_add("passes.fusion_applied", fs.applied as u64);
        reg.counter_add("passes.fusion_rejected", fs.rejected as u64);
        reg.counter_add("passes.fusion_tmp_elems_saved", fs.tmp_elems_saved as u64);
    }

    let mut groups = Vec::with_capacity(plan.groups.len());
    for (gi, g) in plan.groups.iter().enumerate() {
        let mut s = ft_probe::span("compile", "pass.reorder");
        let reordering = reorder_group(&etdg, &g.members)?;
        if s.is_recording() {
            let (lo, hi) = reordering.wavefront_range();
            s.field("group", gi);
            s.field("members", g.members.len());
            s.field("sequential_dims", reordering.sequential_dims);
            s.field("wavefront_steps", hi - lo);
        }
        groups.push(ScheduledGroup {
            members: g.members.clone(),
            ops: g.ops.clone(),
            reordering,
        });
    }
    Ok((etdg, plan, groups))
}

/// Buffer-touching edges of the graph: one per region read of a buffer
/// (fills excluded) plus one per region write.
fn graph_edges(g: &Etdg) -> usize {
    g.blocks
        .iter()
        .map(|b| {
            let reads = b
                .reads
                .iter()
                .filter(|r| matches!(r, RegionRead::Buffer { .. }))
                .count();
            reads + b.writes.len()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;

    #[test]
    fn stacked_rnn_compiles_to_single_wavefront_group() {
        let (n, d, l) = (2usize, 3usize, 4usize);
        let p = stacked_rnn_program(n, d, l, 8);
        let c = compile(&p).unwrap();
        assert_eq!(c.groups.len(), 1);
        let g = &c.groups[0];
        assert_eq!(g.members.len(), 4);
        // Wavefront over d + l: values 0 ..= (d-1)+(l-1), i.e. d+l-1 steps.
        assert_eq!(g.wavefront_steps(), (d + l - 1) as i64);
        assert_eq!(g.reordering.sequential_dims, 1);
        assert!(c.summary().contains("1 launch group"));
    }

    #[test]
    fn wavefront_steps_scale_additively_not_multiplicatively() {
        // The crux of Figure 2: with the wavefront schedule the sequential
        // extent is D + L - 1, not D * L.
        for (d, l) in [(4usize, 16usize), (16, 16), (32, 16)] {
            let p = stacked_rnn_program(2, d, l, 4);
            let c = compile(&p).unwrap();
            assert_eq!(c.groups[0].wavefront_steps(), (d + l - 1) as i64);
        }
    }
}
