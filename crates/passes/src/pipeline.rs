//! The end-to-end compile pipeline: parse → access-map fusion → width-wise
//! coarsening → per-group reordering. The result is everything a backend
//! needs to execute or emit code.

use ft_core::Program;
use ft_etdg::{parse_program, BlockId, Etdg};

use crate::coarsen::{coarsen, CoarsePlan};
use crate::reorder::{reorder_group, Reordering};
use crate::Result;

/// One launch group with its reordered schedule.
#[derive(Debug, Clone)]
pub struct ScheduledGroup {
    /// Member block nodes (region order: producers of carried values
    /// first).
    pub members: Vec<BlockId>,
    /// The composed operator vector.
    pub ops: Vec<ft_core::OpKind>,
    /// The unimodular reordering (identity with zero sequential dims for
    /// pure map groups).
    pub reordering: Reordering,
}

impl ScheduledGroup {
    /// Number of wavefront steps this group executes sequentially.
    pub fn wavefront_steps(&self) -> i64 {
        let (lo, hi) = self.reordering.wavefront_range();
        hi - lo
    }
}

/// A fully analyzed program.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The coarsened graph (copies eliminated).
    pub etdg: Etdg,
    /// The coarsening decisions.
    pub plan: CoarsePlan,
    /// Scheduled groups in execution order.
    pub groups: Vec<ScheduledGroup>,
}

impl CompiledProgram {
    /// Summary line used by examples and the bench harness.
    pub fn summary(&self) -> String {
        let seqs: Vec<String> = self
            .groups
            .iter()
            .map(|g| {
                format!(
                    "{}[{} member(s), {} step(s)]",
                    self.etdg.block(g.members[0]).name,
                    g.members.len(),
                    g.wavefront_steps()
                )
            })
            .collect();
        format!(
            "{}: {} block(s) -> {} launch group(s): {}",
            self.etdg.name,
            self.etdg.blocks.len(),
            self.groups.len(),
            seqs.join(", ")
        )
    }
}

/// Compiles a program through the full §5.1–§5.2 pipeline.
///
/// # Examples
///
/// ```
/// use ft_core::builders::stacked_rnn_program;
/// use ft_passes::compile;
///
/// // Listing 1's stacked RNN: batch 2, depth 3, length 4, hidden 8.
/// let compiled = compile(&stacked_rnn_program(2, 3, 4, 8)).unwrap();
/// // The four boundary regions fuse into one wavefront launch group with
/// // depth + length - 1 sequential steps.
/// assert_eq!(compiled.groups.len(), 1);
/// assert_eq!(compiled.groups[0].wavefront_steps(), 6);
/// ```
pub fn compile(program: &Program) -> Result<CompiledProgram> {
    let parsed = parse_program(program)?;
    let (etdg, plan) = coarsen(&parsed)?;
    let mut groups = Vec::with_capacity(plan.groups.len());
    for g in &plan.groups {
        let reordering = reorder_group(&etdg, &g.members)?;
        groups.push(ScheduledGroup {
            members: g.members.clone(),
            ops: g.ops.clone(),
            reordering,
        });
    }
    Ok(CompiledProgram { etdg, plan, groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;

    #[test]
    fn stacked_rnn_compiles_to_single_wavefront_group() {
        let (n, d, l) = (2usize, 3usize, 4usize);
        let p = stacked_rnn_program(n, d, l, 8);
        let c = compile(&p).unwrap();
        assert_eq!(c.groups.len(), 1);
        let g = &c.groups[0];
        assert_eq!(g.members.len(), 4);
        // Wavefront over d + l: values 0 ..= (d-1)+(l-1), i.e. d+l-1 steps.
        assert_eq!(g.wavefront_steps(), (d + l - 1) as i64);
        assert_eq!(g.reordering.sequential_dims, 1);
        assert!(c.summary().contains("1 launch group"));
    }

    #[test]
    fn wavefront_steps_scale_additively_not_multiplicatively() {
        // The crux of Figure 2: with the wavefront schedule the sequential
        // extent is D + L - 1, not D * L.
        for (d, l) in [(4usize, 16usize), (16, 16), (32, 16)] {
            let p = stacked_rnn_program(2, d, l, 4);
            let c = compile(&p).unwrap();
            assert_eq!(c.groups[0].wavefront_steps(), (d + l - 1) as i64);
        }
    }
}
