//! ETDG-level kernel fusion (rten-style peepholes on the UDF SSA).
//!
//! Three rewrites, applied per block node after coarsening:
//!
//! 1. **SiLU peephole** — `Mul(x, Sigmoid(x))` (either operand order,
//!    single-use sigmoid) collapses to `Silu(x)`.
//! 2. **GEMM epilogue absorption** — a `MatMul`/`MatMulT` whose result
//!    flows through a single-use chain of elementwise consumers absorbs
//!    that chain as an [`EpiOp`] epilogue (`FusedMatMul`), applied by the
//!    executor inside the GEMM register tile. Gate activations in the
//!    LSTM / stacked-RNN workloads stop round-tripping through the arena.
//! 3. **Elementwise-chain collapse** — a remaining single-use chain of
//!    two or more elementwise statements becomes one [`EwChain`].
//!
//! Legality is purely structural and checked twice: each candidate chain
//! must be single-use, shape-preserving, and reference only operands
//! already available at the anchor statement; the rewritten UDF is then
//! re-validated (`Udf::validate` + `infer_shapes`) and the whole rewrite
//! reverted (counted in `passes.fusion_rejected`) if anything fails.
//! ft-verify independently re-checks every compiled UDF, so an illegal
//! fusion can never reach the executor silently.
//!
//! Because fused-away intermediates no longer exist as SSA statements,
//! the backend's scratch planner allocates **zero** arena ranges for them
//! — the lifetime shrink is structural, not a special case. The saved
//! elements are reported in `passes.fusion_tmp_elems_saved`.

use ft_core::expr::{OpCode, Operand, Stmt, Udf};
use ft_etdg::{Etdg, RegionRead};
use ft_simd::EpiOp;
use ft_tensor::Shape;

/// Most epilogue micro-ops a single GEMM or chain may absorb.
pub const MAX_EPI_OPS: usize = 8;

/// Outcome counters of one fusion sweep, mirrored into the
/// `passes.fusion_*` probe counters by the compile pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Rewrites committed (one per fused anchor statement).
    pub applied: usize,
    /// Candidate rewrites abandoned because re-validation failed.
    pub rejected: usize,
    /// Scratch elements the backend no longer allocates: the summed
    /// `numel` of every fused-away intermediate statement.
    pub tmp_elems_saved: usize,
}

/// Fuses every block UDF of the graph in place.
pub fn fuse_graph(etdg: &mut Etdg) -> FusionStats {
    let mut stats = FusionStats::default();
    for bi in 0..etdg.blocks.len() {
        let input_shapes: Vec<Shape> = etdg.blocks[bi]
            .reads
            .iter()
            .map(|r| match r {
                RegionRead::Buffer { buffer, .. } => etdg.buffer(*buffer).leaf_shape.clone(),
                RegionRead::Fill { leaf_shape, .. } => leaf_shape.clone(),
            })
            .collect();
        let (udf, s) = fuse_udf(&etdg.blocks[bi].udf, &input_shapes);
        stats.applied += s.applied;
        stats.rejected += s.rejected;
        stats.tmp_elems_saved += s.tmp_elems_saved;
        if let Some(udf) = udf {
            etdg.blocks[bi].udf = udf;
        }
    }
    stats
}

/// Fuses one UDF. Returns the rewritten UDF (`None` when nothing fused)
/// plus the stats of this UDF alone.
pub fn fuse_udf(udf: &Udf, input_shapes: &[Shape]) -> (Option<Udf>, FusionStats) {
    let mut stats = FusionStats::default();
    let Ok(shapes) = udf.infer_shapes(input_shapes) else {
        return (None, stats);
    };

    let mut stmts: Vec<Stmt> = udf.stmts.clone();
    let mut dead = vec![false; stmts.len()];
    // `alias[k] = Some(j)`: uses of Tmp(k) must become uses of Tmp(j)
    // (the chain tail's value now lives in the anchor's result).
    let mut alias: Vec<Option<usize>> = vec![None; stmts.len()];

    let uses = use_counts(udf);
    let is_output: Vec<bool> = (0..stmts.len())
        .map(|k| udf.outputs.contains(&Operand::Tmp(k)))
        .collect();

    // Pass 1: SiLU peephole. Rewrites Mul in place, kills the sigmoid.
    for i in 0..stmts.len() {
        if stmts[i].op != OpCode::Mul {
            continue;
        }
        let (a, b) = (stmts[i].args[0], stmts[i].args[1]);
        let sigmoid_of = |o: Operand| -> Option<Operand> {
            let Operand::Tmp(j) = o else { return None };
            (stmts[j].op == OpCode::Sigmoid && !dead[j] && uses[j] == 1 && !is_output[j])
                .then(|| stmts[j].args[0])
        };
        let rewrite = match (sigmoid_of(b), sigmoid_of(a)) {
            (Some(x), _) if x == a => Some((b, x)),
            (_, Some(x)) if x == b => Some((a, x)),
            _ => None,
        };
        if let Some((sig, x)) = rewrite {
            let Operand::Tmp(j) = sig else { unreachable!() };
            stmts[i] = Stmt {
                op: OpCode::Silu,
                args: vec![x],
            };
            dead[j] = true;
            stats.applied += 1;
            stats.tmp_elems_saved += shapes.stmts[j].numel();
        }
    }

    // Recount after the peephole (Silu dropped a use of each dead sigmoid
    // input; chain walking below needs fresh counts over live stmts).
    let uses = use_counts_live(&stmts, &udf.outputs, &dead);

    // Pass 2: GEMM epilogue absorption, then pass 3: elementwise-chain
    // collapse. Both walk the unique-consumer chain from an anchor.
    for i in 0..stmts.len() {
        if dead[i] {
            continue;
        }
        let anchor_shape = &shapes.stmts[i];
        let (gemm, chain_budget) = match stmts[i].op {
            OpCode::MatMul | OpCode::MatMulT => (true, MAX_EPI_OPS),
            _ => (false, MAX_EPI_OPS),
        };
        if !gemm {
            // Elementwise anchors: the anchor op itself must map to an
            // EpiOp and its chain must have at least one more member to be
            // worth collapsing.
            if as_epi(&stmts[i].op).is_none() {
                continue;
            }
        }

        let mut epi: Vec<EpiOp> = Vec::new();
        let mut extras: Vec<Operand> = Vec::new();
        let mut absorbed: Vec<usize> = Vec::new();
        if !gemm {
            // The anchor's own op opens the chain, applied to its arg0.
            let (op, extra) = as_epi(&stmts[i].op).expect("checked above");
            if extra && shapes_differ(&stmts[i].args[1], anchor_shape, &shapes, input_shapes) {
                continue;
            }
            epi.push(op);
            if extra {
                extras.push(stmts[i].args[1]);
            }
        }

        let mut cur = i;
        while epi.len() < chain_budget {
            // Unique live consumer of Tmp(cur), not an output itself.
            if is_output[cur] && cur != i {
                break;
            }
            let Some(c) = unique_consumer(&stmts, &dead, &uses, cur) else {
                break;
            };
            let Some((op, has_extra)) = consumer_epi(&stmts[c], cur) else {
                break;
            };
            // Shape must be preserved and the extra operand must already
            // exist at the anchor's position (no forward references).
            if shapes.stmts[c].dims() != anchor_shape.dims() {
                break;
            }
            let extra = if has_extra {
                let e = other_operand(&stmts[c], cur);
                match e {
                    Operand::Tmp(j) if j >= i || dead[j] => break,
                    _ => {}
                }
                if shapes_differ(&e, anchor_shape, &shapes, input_shapes) {
                    break;
                }
                Some(e)
            } else {
                None
            };
            epi.push(op);
            if let Some(e) = extra {
                extras.push(e);
            }
            absorbed.push(c);
            cur = c;
        }

        let worthwhile = if gemm {
            !absorbed.is_empty()
        } else {
            // A chain of one is just the original statement.
            !absorbed.is_empty()
        };
        if !worthwhile {
            continue;
        }

        let mut args: Vec<Operand> = if gemm {
            vec![stmts[i].args[0], stmts[i].args[1]]
        } else {
            vec![stmts[i].args[0]]
        };
        args.extend(extras);
        let op = if gemm {
            OpCode::FusedMatMul {
                transb: stmts[i].op == OpCode::MatMulT,
                epi,
            }
        } else {
            OpCode::EwChain(epi)
        };
        stmts[i] = Stmt { op, args };
        for &c in &absorbed {
            dead[c] = true;
            stats.tmp_elems_saved += shapes.stmts[c].numel();
        }
        // The chain tail's value is now the anchor's result.
        alias[cur] = Some(i);
        stats.applied += 1;
    }

    if stats.applied == 0 {
        return (None, stats);
    }

    match rebuild(udf, &stmts, &dead, &alias) {
        Some(new_udf)
            if new_udf.validate().is_ok() && new_udf.infer_shapes(input_shapes).is_ok() =>
        {
            (Some(new_udf), stats)
        }
        _ => {
            // Structural re-validation failed: revert the whole UDF.
            stats.rejected = stats.applied;
            stats.applied = 0;
            stats.tmp_elems_saved = 0;
            (None, stats)
        }
    }
}

/// How often each tmp is used (arg references + output references).
fn use_counts(udf: &Udf) -> Vec<usize> {
    let mut uses = vec![0usize; udf.stmts.len()];
    for s in &udf.stmts {
        for a in &s.args {
            if let Operand::Tmp(k) = a {
                uses[*k] += 1;
            }
        }
    }
    for o in &udf.outputs {
        if let Operand::Tmp(k) = o {
            uses[*k] += 1;
        }
    }
    uses
}

fn use_counts_live(stmts: &[Stmt], outputs: &[Operand], dead: &[bool]) -> Vec<usize> {
    let mut uses = vec![0usize; stmts.len()];
    for (i, s) in stmts.iter().enumerate() {
        if dead[i] {
            continue;
        }
        for a in &s.args {
            if let Operand::Tmp(k) = a {
                uses[*k] += 1;
            }
        }
    }
    for o in outputs {
        if let Operand::Tmp(k) = o {
            uses[*k] += 1;
        }
    }
    uses
}

/// The unique live consumer statement of `Tmp(producer)`, if the producer
/// has exactly one use and that use is a statement argument.
fn unique_consumer(
    stmts: &[Stmt],
    dead: &[bool],
    uses: &[usize],
    producer: usize,
) -> Option<usize> {
    if uses[producer] != 1 {
        return None;
    }
    stmts
        .iter()
        .enumerate()
        .position(|(ci, s)| !dead[ci] && ci > producer && s.args.contains(&Operand::Tmp(producer)))
}

/// Maps an elementwise opcode to its epilogue form, with whether it
/// consumes an extra operand. Anchor-side mapping: the chain value is the
/// op's **first** argument.
fn as_epi(op: &OpCode) -> Option<(EpiOp, bool)> {
    Some(match op {
        OpCode::Add => (EpiOp::Add, true),
        OpCode::Sub => (EpiOp::Sub, true),
        OpCode::Mul => (EpiOp::Mul, true),
        OpCode::Div => (EpiOp::Div, true),
        OpCode::Max => (EpiOp::Max, true),
        OpCode::Scale(c) => (EpiOp::Scale(*c), false),
        OpCode::AddScalar(c) => (EpiOp::AddScalar(*c), false),
        OpCode::Neg => (EpiOp::Neg, false),
        OpCode::Relu => (EpiOp::Relu, false),
        OpCode::Exp => (EpiOp::Exp, false),
        OpCode::Sigmoid => (EpiOp::Sigmoid, false),
        OpCode::Tanh => (EpiOp::Tanh, false),
        OpCode::Silu => (EpiOp::Silu, false),
        _ => return None,
    })
}

/// Maps a consumer statement to the epilogue op it applies to the chain
/// value `Tmp(producer)`, accounting for which side of a binary op the
/// chain value sits on (`Sub`/`Div` flip to `RSub`/`RDiv`).
fn consumer_epi(stmt: &Stmt, producer: usize) -> Option<(EpiOp, bool)> {
    let p = Operand::Tmp(producer);
    let lhs = stmt.args.first() == Some(&p);
    let rhs = stmt.args.get(1) == Some(&p);
    // The chain value must appear on exactly one side (x - x etc. keeps
    // its materialized form).
    if lhs && rhs {
        return None;
    }
    Some(match (&stmt.op, lhs) {
        (OpCode::Add, _) => (EpiOp::Add, true),
        (OpCode::Mul, _) => (EpiOp::Mul, true),
        (OpCode::Max, _) => (EpiOp::Max, true),
        (OpCode::Sub, true) => (EpiOp::Sub, true),
        (OpCode::Sub, false) => (EpiOp::RSub, true),
        (OpCode::Div, true) => (EpiOp::Div, true),
        (OpCode::Div, false) => (EpiOp::RDiv, true),
        (OpCode::Scale(c), _) => (EpiOp::Scale(*c), false),
        (OpCode::AddScalar(c), _) => (EpiOp::AddScalar(*c), false),
        (OpCode::Neg, _) => (EpiOp::Neg, false),
        (OpCode::Relu, _) => (EpiOp::Relu, false),
        (OpCode::Exp, _) => (EpiOp::Exp, false),
        (OpCode::Sigmoid, _) => (EpiOp::Sigmoid, false),
        (OpCode::Tanh, _) => (EpiOp::Tanh, false),
        (OpCode::Silu, _) => (EpiOp::Silu, false),
        _ => return None,
    })
}

/// The non-chain operand of a binary consumer.
fn other_operand(stmt: &Stmt, producer: usize) -> Operand {
    let p = Operand::Tmp(producer);
    if stmt.args[0] == p {
        stmt.args[1]
    } else {
        stmt.args[0]
    }
}

/// Whether `operand`'s shape differs from the anchor result shape.
fn shapes_differ(
    operand: &Operand,
    anchor: &Shape,
    shapes: &ft_core::expr::UdfShapes,
    input_shapes: &[Shape],
) -> bool {
    let dims = match operand {
        Operand::In(k) => input_shapes[*k].dims(),
        Operand::Tmp(k) => shapes.stmts[*k].dims(),
    };
    dims != anchor.dims()
}

/// Drops dead statements, applies tail aliases, and renumbers tmps.
fn rebuild(udf: &Udf, stmts: &[Stmt], dead: &[bool], alias: &[Option<usize>]) -> Option<Udf> {
    let mut remap = vec![usize::MAX; stmts.len()];
    let mut new_stmts = Vec::with_capacity(stmts.len());
    let resolve = |k: usize| -> usize {
        // Alias chains are one level deep (tail -> anchor).
        match alias[k] {
            Some(j) => j,
            None => k,
        }
    };
    for (i, s) in stmts.iter().enumerate() {
        if dead[i] {
            continue;
        }
        remap[i] = new_stmts.len();
        new_stmts.push(s.clone());
    }
    let map_operand = |o: &Operand| -> Option<Operand> {
        match o {
            Operand::In(k) => Some(Operand::In(*k)),
            Operand::Tmp(k) => {
                let t = remap[resolve(*k)];
                (t != usize::MAX).then_some(Operand::Tmp(t))
            }
        }
    };
    for s in &mut new_stmts {
        for a in &mut s.args {
            *a = map_operand(a)?;
        }
    }
    let outputs = udf
        .outputs
        .iter()
        .map(map_operand)
        .collect::<Option<Vec<_>>>()?;
    Some(Udf {
        name: udf.name.clone(),
        stmts: new_stmts,
        outputs,
        num_inputs: udf.num_inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::expr::UdfBuilder;
    use ft_tensor::Tensor;

    fn shapes_of(dims: &[&[usize]]) -> Vec<Shape> {
        dims.iter().map(|d| Shape::new(d)).collect()
    }

    #[test]
    fn silu_peephole_fires() {
        let mut b = UdfBuilder::new("silu", 1);
        let x = b.input(0);
        let s = b.sigmoid(x);
        let y = b.mul(x, s);
        let udf = b.build(&[y]);
        let (fused, stats) = fuse_udf(&udf, &shapes_of(&[&[2, 3]]));
        let fused = fused.expect("peephole should fire");
        assert_eq!(stats.applied, 1);
        assert_eq!(fused.stmts.len(), 1);
        assert_eq!(fused.stmts[0].op, OpCode::Silu);

        // Bitwise: fused eval equals unfused eval in the active mode
        // (Tensor::silu and mul(sigmoid) route through the same kernels
        // only in fused form — compare against the scalar composition).
        let t = Tensor::randn(&[2, 3], 7);
        let got = fused.eval(std::slice::from_ref(&t)).unwrap();
        let want = udf.eval(std::slice::from_ref(&t)).unwrap();
        for (g, w) in got[0].to_vec().iter().zip(want[0].to_vec()) {
            assert!((g - w).abs() <= 1e-6 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn gemm_absorbs_epilogue_chain() {
        // y = tanh(x @ w + b): the stacked-RNN cell.
        let mut b = UdfBuilder::new("cell", 3);
        let (x, w, bias) = (b.input(0), b.input(1), b.input(2));
        let xw = b.matmul(x, w);
        let s = b.add(xw, bias);
        let y = b.tanh(s);
        let udf = b.build(&[y]);
        let shapes = shapes_of(&[&[1, 8], &[8, 8], &[1, 8]]);
        let (fused, stats) = fuse_udf(&udf, &shapes);
        let fused = fused.expect("gemm fusion should fire");
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.tmp_elems_saved, 16); // two [1,8] intermediates
        assert_eq!(fused.stmts.len(), 1);
        match &fused.stmts[0].op {
            OpCode::FusedMatMul { transb, epi } => {
                assert!(!transb);
                assert_eq!(epi, &[EpiOp::Add, EpiOp::Tanh]);
            }
            other => panic!("expected FusedMatMul, got {other:?}"),
        }
        // Value parity (same mode, bitwise by the fusion contract).
        let inputs = [
            Tensor::randn(&[1, 8], 1),
            Tensor::randn(&[8, 8], 2),
            Tensor::randn(&[1, 8], 3),
        ];
        let got = fused.eval(&inputs).unwrap();
        let want = inputs[0]
            .matmul(&inputs[1])
            .unwrap()
            .add(&inputs[2])
            .unwrap()
            .tanh();
        assert_eq!(
            got[0]
                .to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            want.to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_use_intermediate_blocks_fusion() {
        // The matmul result feeds both the add and an output: no fusion.
        let mut b = UdfBuilder::new("shared", 3);
        let (x, w, bias) = (b.input(0), b.input(1), b.input(2));
        let xw = b.matmul(x, w);
        let s = b.add(xw, bias);
        let udf = b.build(&[s, xw]);
        let (fused, stats) = fuse_udf(&udf, &shapes_of(&[&[1, 8], &[8, 8], &[1, 8]]));
        assert!(fused.is_none());
        assert_eq!(stats.applied, 0);
    }

    #[test]
    fn elementwise_chain_collapses() {
        // y = relu(a + b) * c — no GEMM anchor, pure elementwise chain.
        let mut b = UdfBuilder::new("chain", 3);
        let (a, bb, c) = (b.input(0), b.input(1), b.input(2));
        let s = b.add(a, bb);
        let r = b.relu(s);
        let y = b.mul(r, c);
        let udf = b.build(&[y]);
        let shapes = shapes_of(&[&[2, 4], &[2, 4], &[2, 4]]);
        let (fused, stats) = fuse_udf(&udf, &shapes);
        let fused = fused.expect("chain should collapse");
        assert_eq!(stats.applied, 1);
        assert_eq!(fused.stmts.len(), 1);
        match &fused.stmts[0].op {
            OpCode::EwChain(ops) => {
                assert_eq!(ops, &[EpiOp::Add, EpiOp::Relu, EpiOp::Mul]);
            }
            other => panic!("expected EwChain, got {other:?}"),
        }
        let inputs = [
            Tensor::randn(&[2, 4], 4),
            Tensor::randn(&[2, 4], 5),
            Tensor::randn(&[2, 4], 6),
        ];
        let got = fused.eval(&inputs).unwrap();
        let want = inputs[0]
            .add(&inputs[1])
            .unwrap()
            .relu()
            .mul(&inputs[2])
            .unwrap();
        assert_eq!(
            got[0]
                .to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            want.to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn sub_flips_when_chain_is_rhs() {
        // y = b - (x @ w): the GEMM sits on the RHS of the sub.
        let mut b = UdfBuilder::new("rsub", 3);
        let (x, w, bias) = (b.input(0), b.input(1), b.input(2));
        let xw = b.matmul(x, w);
        let y = b.sub(bias, xw);
        let udf = b.build(&[y]);
        let (fused, _) = fuse_udf(&udf, &shapes_of(&[&[1, 4], &[4, 4], &[1, 4]]));
        let fused = fused.expect("fusion should fire");
        match &fused.stmts[0].op {
            OpCode::FusedMatMul { epi, .. } => assert_eq!(epi, &[EpiOp::RSub]),
            other => panic!("expected FusedMatMul, got {other:?}"),
        }
        let inputs = [
            Tensor::randn(&[1, 4], 1),
            Tensor::randn(&[4, 4], 2),
            Tensor::randn(&[1, 4], 3),
        ];
        let got = fused.eval(&inputs).unwrap();
        let want = inputs[2]
            .sub(&inputs[0].matmul(&inputs[1]).unwrap())
            .unwrap();
        assert_eq!(
            got[0]
                .to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            want.to_vec()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
