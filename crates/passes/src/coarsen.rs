//! ETDG coarsening (paper §5.1): width-wise block merging, depth-wise
//! dimension merging, and access-map fusion.
//!
//! * **Vertical merge**: producer→consumer blocks at the same depth whose
//!   per-dimension operators compose under the Table 3 rules become one
//!   task (this is what collapses Figure 4's `region₀…₃` — and the whole
//!   stacked RNN — into a single wavefront kernel).
//! * **Horizontal merge**: same-shaped, unconnected blocks fuse into one
//!   launch (BigBird's left/right global attention maps, for example).
//! * **Depth-wise merge**: two adjacent fully-parallel dimensions flatten
//!   into one when every access either treats both jointly row-major or is
//!   invariant in both — the hardware-agnostic "axis fusion".
//! * **Access-map fusion**: pure-copy blocks forced by single assignment
//!   are eliminated by composing access matrices and offsets.

use ft_affine::AffineMap;
use ft_core::expr::OpCode;
use ft_core::OpKind;
use ft_etdg::{BlockId, BlockNode, Etdg, RegionRead};

use crate::compose::compose_vectors;
use crate::{PassError, Result};

/// How a group came to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeKind {
    /// Never merged.
    Singleton,
    /// Produced by at least one vertical (producer→consumer) merge.
    Vertical,
    /// Produced by horizontal merges only.
    Horizontal,
}

/// A coarse task: one or more block nodes fused into a single launch group.
#[derive(Debug, Clone)]
pub struct Group {
    /// Member blocks, producers before consumers.
    pub members: Vec<BlockId>,
    /// The composed operator vector governing the merged iteration space.
    pub ops: Vec<OpKind>,
    /// Shared extents (all members agree by the merge conditions).
    pub extents: Vec<usize>,
    /// How the group formed.
    pub kind: MergeKind,
}

/// The coarsening result.
#[derive(Debug, Clone)]
pub struct CoarsePlan {
    /// Launch groups in execution order.
    pub groups: Vec<Group>,
    /// Copy blocks removed by access-map fusion.
    pub copies_eliminated: usize,
}

impl CoarsePlan {
    /// Total kernel-launch groups (the control-overhead proxy the paper's
    /// coarsening minimizes).
    pub fn launch_count(&self) -> usize {
        self.groups.len()
    }
}

/// Runs width-wise coarsening over a parsed ETDG. The graph itself is left
/// untouched (members keep their regions and access maps); the plan records
/// which blocks execute together and under which composed operator vector.
pub fn coarsen(etdg: &Etdg) -> Result<(Etdg, CoarsePlan)> {
    let (etdg, copies_eliminated) = fuse_access_maps(etdg.clone())?;
    let order = etdg.topo_order()?;
    let mut groups: Vec<Group> = order
        .into_iter()
        .map(|b| {
            let blk = etdg.block(b);
            Group {
                members: vec![b],
                ops: blk.ops.clone(),
                extents: blk.extents.clone(),
                kind: MergeKind::Singleton,
            }
        })
        .collect();

    // Vertical merging to fixpoint: adjacent (producer, consumer) groups
    // with composable operator vectors and equal extents collapse.
    loop {
        let mut merged_any = false;
        'outer: for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                if !connected(&etdg, &groups[i], &groups[j])
                    && !connected(&etdg, &groups[j], &groups[i])
                {
                    continue;
                }
                let Some(ops) = compose_vectors(&groups[i].ops, &groups[j].ops) else {
                    continue;
                };
                if groups[i].extents != groups[j].extents {
                    continue;
                }
                // Iteration-level fusion safety: the consumer must read the
                // shared buffer exactly where the producer wrote it at the
                // same iteration point, so the value can be forwarded in
                // registers/shared memory within one launch.
                if !point_to_point(&etdg, &groups[i], &groups[j])
                    || !point_to_point(&etdg, &groups[j], &groups[i])
                {
                    continue;
                }
                // The merged group executes at position i: group j's work
                // moves earlier, which is illegal if j depends on a group
                // strictly between the two.
                if (i + 1..j).any(|k| connected(&etdg, &groups[k], &groups[j])) {
                    continue;
                }
                let g2 = groups.remove(j);
                let g1 = &mut groups[i];
                g1.members.extend(g2.members);
                g1.ops = ops;
                g1.kind = MergeKind::Vertical;
                merged_any = true;
                break 'outer;
            }
        }
        if !merged_any {
            break;
        }
    }

    // Horizontal merging: unconnected same-shape groups.
    loop {
        let mut merged_any = false;
        'outer: for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                if connected(&etdg, &groups[i], &groups[j])
                    || connected(&etdg, &groups[j], &groups[i])
                {
                    continue;
                }
                if groups[i].ops != groups[j].ops || groups[i].extents != groups[j].extents {
                    continue;
                }
                // Group j's work moves to position i: illegal if j depends
                // on a group strictly between the two.
                if (i + 1..j).any(|k| connected(&etdg, &groups[k], &groups[j])) {
                    continue;
                }
                let g2 = groups.remove(j);
                let g1 = &mut groups[i];
                g1.members.extend(g2.members);
                if g1.kind == MergeKind::Singleton {
                    g1.kind = MergeKind::Horizontal;
                }
                merged_any = true;
                break 'outer;
            }
        }
        if !merged_any {
            break;
        }
    }

    // Within a group, execution must visit producers before consumers at
    // each iteration point; block ids follow program (nest) order, so
    // sorting restores it regardless of the merge sequence.
    for g in groups.iter_mut() {
        g.members.sort();
    }
    let plan = CoarsePlan {
        groups,
        copies_eliminated,
    };
    Ok((etdg, plan))
}

/// True when every cross-nest (producer write, consumer read) pair between
/// the two groups uses the *same* access map — the condition for forwarding
/// the value within one fused launch.
fn point_to_point(etdg: &Etdg, a: &Group, b: &Group) -> bool {
    for &ma in &a.members {
        for w in &etdg.block(ma).writes {
            for &mb in &b.members {
                if etdg.block(mb).src_nest == etdg.block(ma).src_nest {
                    continue;
                }
                for r in &etdg.block(mb).reads {
                    if let RegionRead::Buffer { buffer, map } = r {
                        if *buffer == w.buffer && *map != w.map {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// True when some member of `b` reads a buffer written by some member of
/// `a` (cross-nest only; intra-nest region wiring is one logical task).
fn connected(etdg: &Etdg, a: &Group, b: &Group) -> bool {
    for &ma in &a.members {
        for w in &etdg.block(ma).writes {
            for &mb in &b.members {
                if etdg.block(mb).src_nest == etdg.block(ma).src_nest {
                    continue;
                }
                if etdg
                    .block(mb)
                    .reads
                    .iter()
                    .any(|r| r.buffer() == Some(w.buffer))
                {
                    return true;
                }
            }
        }
    }
    false
}

/// Access-map fusion (§5.1): a block whose UDF is a single identity
/// statement with an injective write map is a copy forced by single
/// assignment. Each reader of its output has its access map composed with
/// the copy's read map (`A_read ∘ A_copy`), and the copy block — plus its
/// intermediate buffer — drops out of the graph.
pub fn fuse_access_maps(mut etdg: Etdg) -> Result<(Etdg, usize)> {
    let mut eliminated = 0usize;
    while let Some(copy_id) = find_copy_block(&etdg) {
        let copy = etdg.block(BlockId(copy_id)).clone();
        let RegionRead::Buffer {
            buffer: src_buf,
            map: src_map,
        } = copy.reads[0].clone()
        else {
            break;
        };
        let out_buf = copy.writes[0].buffer;
        let write_map = copy.writes[0].map.clone();
        // The write must be plain identity so that reading `out_buf[i]`
        // equals reading `src_buf[src_map(i)]`.
        if write_map != AffineMap::identity(copy.dims()) {
            break;
        }
        for b in etdg.blocks.iter_mut() {
            for read in b.reads.iter_mut() {
                if let RegionRead::Buffer { buffer, map } = read {
                    if *buffer == out_buf {
                        *map = src_map.compose(map).map_err(PassError::from)?;
                        *buffer = src_buf;
                    }
                }
            }
        }
        // Remove the copy block (ids shift down by one past it).
        etdg.blocks.remove(copy_id);
        for b in etdg.blocks.iter_mut() {
            if let Some(p) = b.parent {
                if p.0 > copy_id {
                    b.parent = Some(BlockId(p.0 - 1));
                }
            }
            for c in b.children.iter_mut() {
                if c.0 > copy_id {
                    *c = BlockId(c.0 - 1);
                }
            }
        }
        eliminated += 1;
    }
    Ok((etdg, eliminated))
}

fn find_copy_block(etdg: &Etdg) -> Option<usize> {
    etdg.blocks.iter().position(|b| {
        b.parent.is_none()
            && b.reads.len() == 1
            && b.writes.len() == 1
            && b.udf.stmts.len() == 1
            && matches!(b.udf.stmts[0].op, OpCode::Id)
            && matches!(b.reads[0], RegionRead::Buffer { .. })
            // Only whole-buffer copies (the consumer must see every element
            // through the composition).
            && etdg.buffer(b.writes[0].buffer).dims
                == b.extents
    })
}

/// Depth-wise coarsening (§5.1): merges adjacent dimensions `i` and `i+1`
/// of a block when both are fully parallel (`map`) and every access either
/// (a) is invariant in both, or (b) addresses them jointly row-major (axis
/// `r` gets dim `i`, axis `r+1` gets dim `i+1`, with the buffer's axis
/// `r+1` extent equal to dim `i+1`'s). Returns the rewritten block.
pub fn merge_dims(etdg: &Etdg, id: BlockId, i: usize) -> Result<BlockNode> {
    let block = etdg.block(id).clone();
    let d = block.dims();
    if i + 1 >= d {
        return Err(PassError::Invalid(format!(
            "merge_dims({i}) on a {d}-dim block"
        )));
    }
    if block.ops[i] != OpKind::Map || block.ops[i + 1] != OpKind::Map {
        return Err(PassError::Illegal(
            "depth-wise merge requires both dimensions fully parallel".into(),
        ));
    }
    let inner_extent = block.extents[i + 1] as i64;

    let rewrite = |map: &AffineMap, buf_dims: &[usize]| -> Result<AffineMap> {
        let m = map.matrix();
        // Classify the relation of dims i, i+1 to this buffer.
        let col_i: Vec<i64> = (0..m.rows()).map(|r| m.get(r, i)).collect();
        let col_j: Vec<i64> = (0..m.rows()).map(|r| m.get(r, i + 1)).collect();
        let invariant = col_i.iter().all(|&x| x == 0) && col_j.iter().all(|&x| x == 0);
        let mut new = ft_affine::IntMat::zeros(m.rows(), d - 1);
        // Copy all untouched columns (shift those past i+1 left by one).
        for r in 0..m.rows() {
            for c in 0..d {
                if c == i || c == i + 1 {
                    continue;
                }
                let nc = if c > i + 1 { c - 1 } else { c };
                new.set(r, nc, m.get(r, c));
            }
        }
        if invariant {
            return AffineMap::new(new, map.offset().to_vec()).map_err(PassError::from);
        }
        // Joint row-major: find rows ri (dim i) and rj = ri+1 (dim i+1).
        let ri = (0..m.rows()).find(|&r| m.get(r, i) == 1);
        let (Some(ri),) = (ri,) else {
            return Err(PassError::Illegal(
                "depth-wise merge: access is neither invariant nor joint row-major".into(),
            ));
        };
        let rj = ri + 1;
        if rj >= m.rows()
            || m.get(rj, i + 1) != 1
            || col_i
                .iter()
                .enumerate()
                .any(|(r, &v)| v != i64::from(r == ri))
            || col_j
                .iter()
                .enumerate()
                .any(|(r, &v)| v != i64::from(r == rj))
            || buf_dims[rj] as i64 != inner_extent
            || map.offset()[ri] != 0
            || map.offset()[rj] != 0
        {
            return Err(PassError::Illegal(
                "depth-wise merge: access is not joint row-major".into(),
            ));
        }
        // The two buffer axes also merge: rebuild with axis rj folded into
        // axis ri (extent product), all other axes untouched.
        let mut merged = ft_affine::IntMat::zeros(m.rows() - 1, d - 1);
        let mut offsets = Vec::with_capacity(m.rows() - 1);
        for r in 0..m.rows() {
            if r == rj {
                continue;
            }
            let nr = if r > rj { r - 1 } else { r };
            for c in 0..d - 1 {
                merged.set(nr, c, new.get(r, c));
            }
            offsets.push(map.offset()[r]);
        }
        merged.set(ri, i, 1);
        AffineMap::new(merged, offsets).map_err(PassError::from)
    };

    let mut out = block.clone();
    out.ops.remove(i + 1);
    out.extents[i] *= out.extents[i + 1];
    out.extents.remove(i + 1);
    out.domain = ft_affine::ConstraintSet::from_box(
        &vec![0i64; d - 1],
        &out.extents.iter().map(|&e| e as i64).collect::<Vec<_>>(),
    )?;
    out.reads = block
        .reads
        .iter()
        .map(|r| match r {
            RegionRead::Buffer { buffer, map } => Ok(RegionRead::Buffer {
                buffer: *buffer,
                map: rewrite(map, &etdg.buffer(*buffer).dims)?,
            }),
            z @ RegionRead::Fill { .. } => Ok(z.clone()),
        })
        .collect::<Result<Vec<_>>>()?;
    out.writes = block
        .writes
        .iter()
        .map(|w| {
            Ok(ft_etdg::RegionWrite {
                buffer: w.buffer,
                map: rewrite(&w.map, &etdg.buffer(w.buffer).dims)?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    out.name = format!("{}/dimmerged{}", block.name, i);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_core::expr::UdfBuilder;
    use ft_core::{AccessSpec, AxisExpr, Nest, Program, Read, Write};
    use ft_etdg::parse_program;

    #[test]
    fn running_example_collapses_to_one_group() {
        // The four regions of the stacked RNN share (map, scanl, scanl) and
        // are producer-consumer linked through ysss, so width-wise
        // coarsening fuses the whole network into a single task — the
        // "entire stacked RNN as a single operator" the paper credits for
        // cuDNN-level performance.
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        let (_g2, plan) = coarsen(&g).unwrap();
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].members.len(), 4);
        assert_eq!(
            plan.groups[0].ops,
            vec![OpKind::Map, OpKind::ScanL, OpKind::ScanL]
        );
    }

    /// A two-nest chain (b2b-GEMM shaped): map-only nests with matching
    /// extents vertically merge.
    #[test]
    fn producer_consumer_map_nests_merge_vertically() {
        let (n, h) = (4usize, 8usize);
        let mut p = Program::new("b2b");
        let a = p.input("a", &[n], &[h, h]);
        let b1 = p.input("b1", &[n], &[h, h]);
        let b2 = p.input("b2", &[n], &[h, h]);
        let mid = p.intermediate("mid", &[n], &[h, h]);
        let out = p.output("out", &[n], &[h, h]);
        let mk_mm = |name: &str| {
            let mut b = UdfBuilder::new(name, 2);
            let (x, y) = (b.input(0), b.input(1));
            let m = b.matmul(x, y);
            b.build(&[m])
        };
        p.add_nest(Nest {
            name: "gemm1".into(),
            ops: vec![OpKind::Map],
            extents: vec![n],
            reads: vec![
                Read::plain(a, AccessSpec::identity(1)),
                Read::plain(b1, AccessSpec::identity(1)),
            ],
            writes: vec![Write {
                buffer: mid,
                access: AccessSpec::identity(1),
            }],
            udf: mk_mm("gemm1"),
        })
        .unwrap();
        p.add_nest(Nest {
            name: "gemm2".into(),
            ops: vec![OpKind::Map],
            extents: vec![n],
            reads: vec![
                Read::plain(mid, AccessSpec::identity(1)),
                Read::plain(b2, AccessSpec::identity(1)),
            ],
            writes: vec![Write {
                buffer: out,
                access: AccessSpec::identity(1),
            }],
            udf: mk_mm("gemm2"),
        })
        .unwrap();
        let g = parse_program(&p).unwrap();
        let (_g2, plan) = coarsen(&g).unwrap();
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].kind, MergeKind::Vertical);
        assert_eq!(plan.groups[0].members.len(), 2);
    }

    /// Unconnected same-shape nests (BigBird's two global attentions) merge
    /// horizontally.
    #[test]
    fn unconnected_same_shape_nests_merge_horizontally() {
        let (n, h) = (4usize, 8usize);
        let mut p = Program::new("globals");
        let q = p.input("q", &[n], &[1, h]);
        let k = p.input("k", &[n], &[h, h]);
        let o1 = p.output("o1", &[n], &[1, h]);
        let o2 = p.output("o2", &[n], &[1, h]);
        let mk = |name: &str| {
            let mut b = UdfBuilder::new(name, 2);
            let (x, y) = (b.input(0), b.input(1));
            let m = b.matmul(x, y);
            b.build(&[m])
        };
        for (name, out) in [("g1", o1), ("g2", o2)] {
            p.add_nest(Nest {
                name: name.into(),
                ops: vec![OpKind::Map],
                extents: vec![n],
                reads: vec![
                    Read::plain(q, AccessSpec::identity(1)),
                    Read::plain(k, AccessSpec::identity(1)),
                ],
                writes: vec![Write {
                    buffer: out,
                    access: AccessSpec::identity(1),
                }],
                udf: mk(name),
            })
            .unwrap();
        }
        let g = parse_program(&p).unwrap();
        let (_g2, plan) = coarsen(&g).unwrap();
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].kind, MergeKind::Horizontal);
    }

    /// Nests with conflicting operators (scanl vs scanr) must not merge.
    #[test]
    fn conflicting_directions_do_not_merge() {
        let (n, l, h) = (2usize, 4usize, 4usize);
        let mut p = Program::new("bidir");
        let xs = p.input("xs", &[n, l], &[1, h]);
        let fwd = p.intermediate("fwd", &[n, l], &[1, h]);
        let bwd = p.output("bwd", &[n, l], &[1, h]);
        let mk = |name: &str| {
            let mut b = UdfBuilder::new(name, 2);
            let (x, s) = (b.input(0), b.input(1));
            let y = b.add(x, s);
            b.build(&[y])
        };
        p.add_nest(Nest {
            name: "fwd".into(),
            ops: vec![OpKind::Map, OpKind::ScanL],
            extents: vec![n, l],
            reads: vec![
                Read::plain(xs, AccessSpec::identity(2)),
                Read::carried(
                    fwd,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, -1)]),
                    ft_core::CarriedInit::Zero,
                ),
            ],
            writes: vec![Write {
                buffer: fwd,
                access: AccessSpec::identity(2),
            }],
            udf: mk("fwd"),
        })
        .unwrap();
        p.add_nest(Nest {
            name: "bwd".into(),
            ops: vec![OpKind::Map, OpKind::ScanR],
            extents: vec![n, l],
            reads: vec![
                Read::plain(fwd, AccessSpec::identity(2)),
                Read::carried(
                    bwd,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, 1)]),
                    ft_core::CarriedInit::Zero,
                ),
            ],
            writes: vec![Write {
                buffer: bwd,
                access: AccessSpec::identity(2),
            }],
            udf: mk("bwd"),
        })
        .unwrap();
        let g = parse_program(&p).unwrap();
        let (_g2, plan) = coarsen(&g).unwrap();
        // Forward scan group and backward scan group stay separate.
        assert_eq!(plan.groups.len(), 2);
    }

    #[test]
    fn copy_blocks_are_fused_away() {
        let (n, h) = (4usize, 8usize);
        let mut p = Program::new("copychain");
        let x = p.input("x", &[n], &[1, h]);
        let shadow = p.intermediate("shadow", &[n], &[1, h]);
        let out = p.output("out", &[n], &[1, h]);
        // Nest 1: pure copy (reversed order), forced by single assignment.
        let mut cb = UdfBuilder::new("copy", 1);
        let i = cb.input(0);
        let o = cb.id(i);
        let copy_udf = cb.build(&[o]);
        p.add_nest(Nest {
            name: "copy".into(),
            ops: vec![OpKind::Map],
            extents: vec![n],
            reads: vec![Read::plain(
                x,
                AccessSpec::new(vec![AxisExpr {
                    terms: vec![(0, -1)],
                    offset: n as i64 - 1,
                }]),
            )],
            writes: vec![Write {
                buffer: shadow,
                access: AccessSpec::identity(1),
            }],
            udf: copy_udf,
        })
        .unwrap();
        // Nest 2: consume the copy.
        let mut ub = UdfBuilder::new("tanh", 1);
        let i = ub.input(0);
        let t = ub.tanh(i);
        let udf = ub.build(&[t]);
        p.add_nest(Nest {
            name: "use".into(),
            ops: vec![OpKind::Map],
            extents: vec![n],
            reads: vec![Read::plain(shadow, AccessSpec::identity(1))],
            writes: vec![Write {
                buffer: out,
                access: AccessSpec::identity(1),
            }],
            udf,
        })
        .unwrap();
        let g = parse_program(&p).unwrap();
        let (fused, n_elim) = fuse_access_maps(g).unwrap();
        assert_eq!(n_elim, 1);
        assert_eq!(fused.blocks.len(), 1);
        // The consumer now reads x directly, through the composed
        // (reversing) map.
        let consumer = &fused.blocks[0];
        match &consumer.reads[0] {
            RegionRead::Buffer { buffer, map } => {
                assert_eq!(fused.buffer(*buffer).name, "x");
                assert_eq!(map.apply(&[0]).unwrap(), vec![n as i64 - 1]);
                assert_eq!(map.apply(&[n as i64 - 1]).unwrap(), vec![0]);
            }
            other => panic!("unexpected read {other:?}"),
        }
    }

    #[test]
    fn depth_wise_merge_flattens_parallel_dims() {
        // A pure-map 2-level nest over [batch, head] with joint row-major
        // access flattens into one dimension of extent batch*head.
        let (b_n, h_n, h) = (3usize, 4usize, 8usize);
        let mut p = Program::new("flat");
        let x = p.input("x", &[b_n, h_n], &[1, h]);
        let y = p.output("y", &[b_n, h_n], &[1, h]);
        let mut ub = UdfBuilder::new("tanh", 1);
        let i = ub.input(0);
        let t = ub.tanh(i);
        let udf = ub.build(&[t]);
        p.add_nest(Nest {
            name: "flat".into(),
            ops: vec![OpKind::Map, OpKind::Map],
            extents: vec![b_n, h_n],
            reads: vec![Read::plain(x, AccessSpec::identity(2))],
            writes: vec![Write {
                buffer: y,
                access: AccessSpec::identity(2),
            }],
            udf,
        })
        .unwrap();
        let g = parse_program(&p).unwrap();
        let merged = merge_dims(&g, BlockId(0), 0).unwrap();
        assert_eq!(merged.extents, vec![b_n * h_n]);
        assert_eq!(merged.ops, vec![OpKind::Map]);
        // The merged access addresses the flattened buffer axis directly.
        match &merged.reads[0] {
            RegionRead::Buffer { map, .. } => {
                assert_eq!(map.iter_dims(), 1);
                assert_eq!(map.data_dims(), 1);
                assert_eq!(map.apply(&[7]).unwrap(), vec![7]);
            }
            other => panic!("unexpected read {other:?}"),
        }
    }

    #[test]
    fn depth_wise_merge_rejects_aggregates_and_bad_layout() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        // (map, scanl) cannot merge.
        assert!(merge_dims(&g, BlockId(3), 0).is_err());
        assert!(merge_dims(&g, BlockId(3), 5).is_err());
    }
}
