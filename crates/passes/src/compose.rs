//! Composition rules for merging array compute operators (paper Table 3).
//!
//! When two block nodes are merged vertically, aligned dimensions carry one
//! operator each; this table says whether the pair can become a single
//! dimension and which operator governs it. The governing intuitions:
//!
//! * `map` is neutral: composing with anything yields the other operator.
//! * Same-direction aggregates compose to the most general same-direction
//!   aggregate (`scan` subsumes `fold`, which subsumes `reduce`, because a
//!   scan materializes every prefix the others only accumulate).
//! * Opposite-direction aggregates (`scanl` with `scanr`, `foldl` with
//!   `foldr`) do **not** compose — their dependencies run against each
//!   other (the ✗ entry of Table 3).

use ft_core::OpKind;

/// Directionality class of an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// No inter-iteration order (map) or order-free aggregate (reduce).
    Free,
    /// Left-to-right.
    Left,
    /// Right-to-left.
    Right,
}

fn dir(op: OpKind) -> Dir {
    match op {
        OpKind::Map | OpKind::Reduce => Dir::Free,
        OpKind::ScanL | OpKind::FoldL => Dir::Left,
        OpKind::ScanR | OpKind::FoldR => Dir::Right,
    }
}

/// Strength ordering for the merge result: scan > fold > reduce > map.
fn strength(op: OpKind) -> u8 {
    match op {
        OpKind::Map => 0,
        OpKind::Reduce => 1,
        OpKind::FoldL | OpKind::FoldR => 2,
        OpKind::ScanL | OpKind::ScanR => 3,
    }
}

/// Composes two array compute operators occupying the same merged
/// dimension. Returns `None` when the pair conflicts (Table 3's ✗).
pub fn compose_ops(a: OpKind, b: OpKind) -> Option<OpKind> {
    let (da, db) = (dir(a), dir(b));
    // Conflicting directions cannot merge.
    if (da == Dir::Left && db == Dir::Right) || (da == Dir::Right && db == Dir::Left) {
        return None;
    }
    // Pick the stronger pattern; direction inherited from whichever side is
    // directional.
    let stronger = if strength(a) >= strength(b) { a } else { b };
    let result_dir = if da != Dir::Free { da } else { db };
    Some(match (stronger, result_dir) {
        (OpKind::Map, _) => OpKind::Map,
        (OpKind::Reduce, Dir::Free) => OpKind::Reduce,
        (OpKind::Reduce, Dir::Left) => OpKind::FoldL,
        (OpKind::Reduce, Dir::Right) => OpKind::FoldR,
        (OpKind::FoldL | OpKind::FoldR, Dir::Right) => OpKind::FoldR,
        (OpKind::FoldL | OpKind::FoldR, _) => OpKind::FoldL,
        (OpKind::ScanL | OpKind::ScanR, Dir::Right) => OpKind::ScanR,
        (OpKind::ScanL | OpKind::ScanR, _) => OpKind::ScanL,
    })
}

/// Composes whole operator vectors dimension by dimension (for vertically
/// merging equal-depth block nodes). `None` when any dimension conflicts.
pub fn compose_vectors(a: &[OpKind], b: &[OpKind]) -> Option<Vec<OpKind>> {
    if a.len() != b.len() {
        return None;
    }
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| compose_ops(x, y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use OpKind::*;

    #[test]
    fn map_is_neutral() {
        for op in [Map, ScanL, ScanR, FoldL, FoldR, Reduce] {
            assert_eq!(compose_ops(Map, op), Some(op));
            assert_eq!(compose_ops(op, Map), Some(op));
        }
    }

    #[test]
    fn same_direction_scans_compose() {
        assert_eq!(compose_ops(ScanL, ScanL), Some(ScanL));
        assert_eq!(compose_ops(ScanR, ScanR), Some(ScanR));
        assert_eq!(compose_ops(ScanL, FoldL), Some(ScanL));
        assert_eq!(compose_ops(FoldL, ScanL), Some(ScanL));
        assert_eq!(compose_ops(FoldL, FoldL), Some(FoldL));
    }

    #[test]
    fn opposite_directions_conflict() {
        // Table 3's ✗ entry.
        assert_eq!(compose_ops(ScanL, ScanR), None);
        assert_eq!(compose_ops(ScanR, ScanL), None);
        assert_eq!(compose_ops(FoldL, FoldR), None);
        assert_eq!(compose_ops(ScanL, FoldR), None);
    }

    #[test]
    fn reduce_takes_partner_direction() {
        assert_eq!(compose_ops(Reduce, ScanL), Some(ScanL));
        assert_eq!(compose_ops(Reduce, ScanR), Some(ScanR));
        assert_eq!(compose_ops(Reduce, Reduce), Some(Reduce));
        assert_eq!(compose_ops(Reduce, FoldR), Some(FoldR));
    }

    #[test]
    fn composition_is_commutative() {
        let all = [Map, ScanL, ScanR, FoldL, FoldR, Reduce];
        for &a in &all {
            for &b in &all {
                assert_eq!(compose_ops(a, b), compose_ops(b, a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn composition_is_associative_where_defined() {
        let all = [Map, ScanL, ScanR, FoldL, FoldR, Reduce];
        for &a in &all {
            for &b in &all {
                for &c in &all {
                    let lhs = compose_ops(a, b).and_then(|x| compose_ops(x, c));
                    let rhs = compose_ops(b, c).and_then(|x| compose_ops(a, x));
                    if let (Some(l), Some(r)) = (lhs, rhs) {
                        assert_eq!(l, r, "({a}∘{b})∘{c} vs {a}∘({b}∘{c})");
                    }
                }
            }
        }
    }

    #[test]
    fn vector_composition() {
        assert_eq!(
            compose_vectors(&[Map, ScanL, ScanL], &[Map, ScanL, ScanL]),
            Some(vec![Map, ScanL, ScanL])
        );
        assert_eq!(compose_vectors(&[Map, ScanL], &[Map, ScanR]), None);
        assert_eq!(compose_vectors(&[Map], &[Map, Map]), None);
    }
}
