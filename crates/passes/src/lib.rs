//! # ft-passes
//!
//! Dependence-driven global analysis (SOSP 2024, §5.1–§5.2): the three
//! architecture-independent transformations that turn a parsed ETDG into an
//! efficient schedule.
//!
//! * [`compose`] — the Table 3 composition rules for merging array compute
//!   operators,
//! * [`lower`] — operation-node lowering: user-defined math functions
//!   decompose into finer-grained child block nodes (Figure 5),
//! * [`coarsen`] — width-wise coarsening (horizontal and vertical block
//!   merging) and depth-wise dimension merging, plus access-map fusion
//!   (copy elimination by composing access matrices),
//! * [`depend`] — dependence distance vectors per Table 4, derived exactly
//!   from each block's self-read access maps,
//! * [`fusion`] — UDF-level kernel fusion: SiLU peephole, GEMM epilogue
//!   absorption into the register tile, elementwise-chain collapse,
//! * [`reorder`] — the unimodular reordering framework: a Lamport-hyperplane
//!   first row that carries every dependence, null-space reuse analysis to
//!   interchange data-reuse dimensions inward, and Fourier–Motzkin
//!   regeneration of loop bounds (Figure 6 / Table 5),
//! * [`pipeline`] — `compile()`, packaging everything into a
//!   [`pipeline::CompiledProgram`] the backend executes.

#![forbid(unsafe_code)]

pub mod cache;
pub mod coarsen;
pub mod compose;
pub mod depend;
pub mod fusion;
pub mod layout;
pub mod lower;
pub mod pipeline;
pub mod poly;
pub mod reorder;

pub use cache::PlanCache;
pub use coarsen::{coarsen, CoarsePlan, Group, MergeKind};
pub use compose::compose_ops;
pub use depend::distance_vectors;
pub use fusion::{fuse_graph, fuse_udf, FusionStats};
pub use layout::{plan_memory, BufferLayout, MemoryPlan, Placement};
pub use pipeline::{compile, CompiledProgram, ScheduledGroup};
pub use poly::{plan_memory_symbolic, MemoryTemplate, PolyCache, PolyPlan};
pub use reorder::{reorder_block, Reordering};

/// Errors from the analysis passes.
#[derive(Debug, Clone, PartialEq)]
pub enum PassError {
    /// Propagated affine-arithmetic failure.
    Affine(String),
    /// Propagated ETDG failure.
    Etdg(String),
    /// A legality check failed (would reorder across a dependence).
    Illegal(String),
    /// Malformed input to a pass.
    Invalid(String),
}

impl std::fmt::Display for PassError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PassError::Affine(m) => write!(f, "affine error: {m}"),
            PassError::Etdg(m) => write!(f, "ETDG error: {m}"),
            PassError::Illegal(m) => write!(f, "illegal transformation: {m}"),
            PassError::Invalid(m) => write!(f, "invalid pass input: {m}"),
        }
    }
}

impl std::error::Error for PassError {}

impl From<ft_affine::AffineError> for PassError {
    fn from(e: ft_affine::AffineError) -> Self {
        PassError::Affine(e.to_string())
    }
}

impl From<ft_etdg::EtdgError> for PassError {
    fn from(e: ft_etdg::EtdgError) -> Self {
        PassError::Etdg(e.to_string())
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PassError>;
