//! Plan-time buffer layout and lifetime analysis (the §5.3
//! access-materialization idea applied to the CPU backend's arena).
//!
//! For every buffer the planner derives a dense flat layout — row-major
//! strides over the programmable dimensions with the leaf elements inlined
//! — and assigns it a *placement*: extern inputs stay in caller-owned
//! storage and are borrowed read-only at run time, everything else gets a
//! contiguous range of one `f32` arena. A liveness pass over the group
//! execution order lets dead intermediates reuse the arena ranges of
//! buffers whose last reader has already run, so the arena footprint is
//! the peak working set rather than the sum of all buffers.
//!
//! The result, [`MemoryPlan`], is a pure plan-time artifact: the executor
//! turns each access map into a flat element offset (an affine function of
//! the wavefront point) and never touches a hash map or clones a leaf on
//! the hot path.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use ft_core::BufferKind;
use ft_etdg::{BufId, Etdg};

use crate::pipeline::ScheduledGroup;

/// Where a buffer's leaves live at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Caller-owned extern input, borrowed read-only (never written).
    Extern,
    /// A contiguous arena range starting at `offset` (in `f32` elements);
    /// `slot_off` is the buffer's base in the leaf-granular
    /// written-bitmap that preserves single-assignment checking.
    Arena {
        /// First element of the buffer's range in the arena.
        offset: usize,
        /// First bit of the buffer's range in the written bitmap.
        slot_off: usize,
    },
}

/// The flat layout of one buffer.
#[derive(Debug, Clone)]
pub struct BufferLayout {
    /// Programmable-dimension extents, outermost first.
    pub dims: Vec<usize>,
    /// Static leaf shape.
    pub leaf_dims: Vec<usize>,
    /// Elements per leaf (`leaf_dims` product).
    pub leaf_len: usize,
    /// Number of leaves (`dims` product).
    pub leaves: usize,
    /// Total flat length in elements (`leaves * leaf_len`).
    pub len: usize,
    /// Leaf-granular row-major strides over `dims`: the flat *leaf* index
    /// of program point `idx` is `sum(leaf_strides[r] * idx[r])`.
    pub leaf_strides: Vec<i64>,
    /// Run-time placement.
    pub placement: Placement,
    /// Live interval in group execution order, inclusive: the buffer's
    /// arena range must not be reused between `live.0` and `live.1`.
    pub live: (usize, usize),
}

/// The program-wide memory plan.
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    /// Per-buffer layouts, indexed by `BufId`.
    pub buffers: Vec<BufferLayout>,
    /// Total arena length in `f32` elements.
    pub arena_len: usize,
    /// Total written-bitmap length in leaves (arena-placed buffers only).
    pub slots_len: usize,
    /// Buffers whose arena range reuses space freed by a dead
    /// intermediate (the lifetime analysis' payoff).
    pub reused_ranges: usize,
}

impl MemoryPlan {
    /// The layout of one buffer.
    pub fn layout(&self, id: BufId) -> &BufferLayout {
        &self.buffers[id.0]
    }
}

/// Builds the layout record for buffer `bi` with a decided placement.
fn make_layout(etdg: &Etdg, bi: usize, placement: Placement, live: (usize, usize)) -> BufferLayout {
    let buf = &etdg.buffers[bi];
    let leaf_dims = buf.leaf_shape.dims().to_vec();
    let leaf_len: usize = leaf_dims.iter().product();
    let leaves: usize = buf.dims.iter().product();
    BufferLayout {
        dims: buf.dims.clone(),
        leaf_dims,
        leaf_len,
        leaves,
        len: leaves * leaf_len,
        leaf_strides: leaf_strides(&buf.dims),
        placement,
        live,
    }
}

/// Row-major leaf strides for `dims`.
pub(crate) fn leaf_strides(dims: &[usize]) -> Vec<i64> {
    let mut strides = vec![1i64; dims.len()];
    for r in (0..dims.len().saturating_sub(1)).rev() {
        strides[r] = strides[r + 1] * dims[r + 1] as i64;
    }
    strides
}

/// Derives the flat layout and arena placement for every buffer of a
/// scheduled program.
///
/// Liveness is computed at group granularity: a buffer is live from the
/// first group that touches it through the last. Groups execute in order
/// and apply their writes serially between wavefront steps, so any buffer
/// whose last toucher precedes group `g` is dead before `g` starts and
/// its range can be handed to a buffer first touched at `g`. Output
/// buffers are materialized after the final group and extern inputs are
/// caller-owned, so both are pinned live to the end.
pub fn plan_memory(etdg: &Etdg, groups: &[ScheduledGroup]) -> MemoryPlan {
    let nbuf = etdg.buffers.len();
    let end = groups.len(); // A group index strictly after every group.
    let mut first = vec![end; nbuf];
    let mut last = vec![0usize; nbuf];
    for (gi, g) in groups.iter().enumerate() {
        for &m in &g.members {
            let block = etdg.block(m);
            let touched = block
                .reads
                .iter()
                .filter_map(|r| r.buffer())
                .chain(block.writes.iter().map(|w| w.buffer));
            for b in touched {
                first[b.0] = first[b.0].min(gi);
                last[b.0] = last[b.0].max(gi);
            }
        }
    }

    // Effective end of life: outputs are read back after the final group,
    // so their ranges must never return to the free list even when their
    // last *write* lands early.
    let live_end: Vec<usize> = (0..nbuf)
        .map(|bi| {
            if etdg.buffers[bi].kind == BufferKind::Output {
                end
            } else {
                last[bi]
            }
        })
        .collect();

    // First-fit free-list allocation over the group timeline.
    let mut layouts: Vec<Option<BufferLayout>> = vec![None; nbuf];
    let mut free: Vec<(usize, usize)> = Vec::new(); // (offset, len), sorted.
    let mut arena_len = 0usize;
    let mut slots_len = 0usize;
    let mut reused_ranges = 0usize;

    for gi in 0..=end {
        // Free ranges of buffers that died strictly before this group.
        for bi in 0..nbuf {
            if live_end[bi] + 1 == gi && first[bi] <= last[bi] {
                if let Some(BufferLayout {
                    placement: Placement::Arena { offset, .. },
                    len,
                    ..
                }) = layouts[bi]
                {
                    if len > 0 {
                        free.push((offset, len));
                        free.sort_unstable();
                    }
                }
            }
        }
        if gi == end {
            break;
        }
        // Allocate buffers first touched at this group.
        for bi in 0..nbuf {
            if first[bi] != gi || layouts[bi].is_some() {
                continue;
            }
            let buf = &etdg.buffers[bi];
            let live_to = live_end[bi];
            if buf.kind == BufferKind::Input {
                layouts[bi] = Some(make_layout(etdg, bi, Placement::Extern, (gi, end)));
                continue;
            }
            let leaf_len: usize = buf.leaf_shape.dims().iter().product();
            let need = buf.dims.iter().product::<usize>() * leaf_len;
            let mut offset = None;
            if let Some(pos) = free.iter().position(|&(_, flen)| flen >= need) {
                let (foff, flen) = free.remove(pos);
                offset = Some(foff);
                if flen > need {
                    free.push((foff + need, flen - need));
                    free.sort_unstable();
                }
                reused_ranges += 1;
            }
            let offset = offset.unwrap_or_else(|| {
                let o = arena_len;
                arena_len += need;
                o
            });
            let slot_off = slots_len;
            slots_len += buf.dims.iter().product::<usize>();
            layouts[bi] = Some(make_layout(
                etdg,
                bi,
                Placement::Arena { offset, slot_off },
                (gi, live_to),
            ));
        }
    }

    // Buffers no group touches (inputs of empty programs, dangling
    // declarations): pin them whole-program so nothing aliases them.
    let buffers = layouts
        .into_iter()
        .enumerate()
        .map(|(bi, l)| match l {
            Some(l) => l,
            None => {
                let buf = &etdg.buffers[bi];
                if buf.kind == BufferKind::Input {
                    make_layout(etdg, bi, Placement::Extern, (0, end))
                } else {
                    let leaf_len: usize = buf.leaf_shape.dims().iter().product();
                    let leaves: usize = buf.dims.iter().product();
                    let offset = arena_len;
                    arena_len += leaves * leaf_len;
                    let slot_off = slots_len;
                    slots_len += leaves;
                    make_layout(etdg, bi, Placement::Arena { offset, slot_off }, (0, end))
                }
            }
        })
        .collect();

    MemoryPlan {
        buffers,
        arena_len,
        slots_len,
        reused_ranges,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::compile;
    use ft_core::builders::stacked_rnn_program;

    #[test]
    fn stacked_rnn_layout_covers_every_buffer_disjointly() {
        let c = compile(&stacked_rnn_program(2, 3, 4, 8)).unwrap();
        let m = &c.memory;
        assert_eq!(m.buffers.len(), c.etdg.buffers.len());
        // Arena ranges of simultaneously-live buffers never overlap.
        for (i, a) in m.buffers.iter().enumerate() {
            let Placement::Arena { offset: ao, .. } = a.placement else {
                continue;
            };
            for b in m.buffers.iter().skip(i + 1) {
                let Placement::Arena { offset: bo, .. } = b.placement else {
                    continue;
                };
                let ranges_overlap = ao < bo + b.len && bo < ao + a.len;
                let lives_overlap = a.live.0 <= b.live.1 && b.live.0 <= a.live.1;
                assert!(
                    !(ranges_overlap && lives_overlap),
                    "live buffers share arena space"
                );
            }
            assert!(ao + a.len <= m.arena_len);
        }
        // Inputs are extern, everything else is in the arena.
        for (bl, buf) in m.buffers.iter().zip(&c.etdg.buffers) {
            match buf.kind {
                BufferKind::Input => assert_eq!(bl.placement, Placement::Extern),
                _ => assert!(matches!(bl.placement, Placement::Arena { .. })),
            }
        }
    }

    #[test]
    fn leaf_strides_are_row_major() {
        assert_eq!(leaf_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(leaf_strides(&[5]), vec![1]);
        assert!(leaf_strides(&[]).is_empty());
    }
}
