//! Operation-node lowering (paper §5.1, Figure 5).
//!
//! User-defined math functions are opaque operation nodes after parsing.
//! Lowering decomposes each UDF statement into a child block node whose
//! dimensions and operators reflect the statement's intrinsic iteration
//! structure (a `[1,512] @ [512,512]` matmul is a 512-wide `map` over
//! output columns crossed with a 512-deep `reduce` over the contraction).
//! A subsequent *hoist* pulls a map dimension shared by every child up into
//! the parent — producing exactly Figure 5's result for the running
//! example: a 4-dimensional parent block plus a single 1-dimensional
//! (reduction) child.

use ft_core::expr::{OpCode, Stmt, Udf};
use ft_core::OpKind;
use ft_etdg::{BlockId, BlockNode, Etdg, RegionRead};
use ft_tensor::Shape;

use crate::{PassError, Result};

/// The intrinsic iteration structure of one UDF statement.
#[derive(Debug, Clone, PartialEq)]
pub struct StmtStructure {
    /// Operators, outermost first (extent-1 dims dropped).
    pub ops: Vec<OpKind>,
    /// Matching extents.
    pub extents: Vec<usize>,
}

/// Computes the intrinsic structure of a statement given its argument and
/// result shapes.
pub fn stmt_structure(stmt: &Stmt, arg_shapes: &[Shape], out_shape: &Shape) -> StmtStructure {
    let mut ops = Vec::new();
    let mut extents = Vec::new();
    // Parallel dims: the non-trivial dims of the output.
    for &d in out_shape.dims() {
        if d > 1 {
            ops.push(OpKind::Map);
            extents.push(d);
        }
    }
    // Contraction / reduction dims.
    match stmt.op {
        OpCode::MatMul => {
            let k = arg_shapes[0].dims()[1];
            if k > 1 {
                ops.push(OpKind::Reduce);
                extents.push(k);
            }
        }
        OpCode::MatMulT => {
            let k = arg_shapes[0].dims()[1];
            if k > 1 {
                ops.push(OpKind::Reduce);
                extents.push(k);
            }
        }
        OpCode::FusedMatMul { .. } => {
            // Same contraction structure as the bare GEMM; the epilogue is
            // a pure map over the output and adds no iteration dims.
            let k = arg_shapes[0].dims()[1];
            if k > 1 {
                ops.push(OpKind::Reduce);
                extents.push(k);
            }
        }
        OpCode::RowMax | OpCode::RowSum => {
            let n = arg_shapes[0].dims()[1];
            if n > 1 {
                ops.push(OpKind::Reduce);
                extents.push(n);
            }
        }
        OpCode::Softmax => {
            // Row-wise normalize: a reduce (max/sum) then a map over the
            // same extent; intrinsically one reduce dim.
            let n = arg_shapes[0].dims()[1];
            if n > 1 {
                ops.push(OpKind::Reduce);
                extents.push(n);
            }
        }
        _ => {}
    }
    StmtStructure { ops, extents }
}

/// Lowers a block's UDF: every statement becomes a child block node.
/// Returns the new child ids.
pub fn lower_block(etdg: &mut Etdg, id: BlockId) -> Result<Vec<BlockId>> {
    let block = etdg.block(id).clone();
    if !block.children.is_empty() {
        return Err(PassError::Invalid(format!(
            "block '{}' is already lowered",
            block.name
        )));
    }
    let in_shapes: Vec<Shape> = block
        .reads
        .iter()
        .map(|r| match r {
            RegionRead::Buffer { buffer, .. } => etdg.buffer(*buffer).leaf_shape.clone(),
            RegionRead::Fill { leaf_shape, .. } => leaf_shape.clone(),
        })
        .collect();
    let shapes = block
        .udf
        .infer_shapes(&in_shapes)
        .map_err(|e| PassError::Invalid(e.to_string()))?;
    let operand_shape = |o: &ft_core::expr::Operand| match o {
        ft_core::expr::Operand::In(k) => in_shapes[*k].clone(),
        ft_core::expr::Operand::Tmp(k) => shapes.stmts[*k].clone(),
    };

    let mut child_ids = Vec::new();
    for (si, stmt) in block.udf.stmts.iter().enumerate() {
        let arg_shapes: Vec<Shape> = stmt.args.iter().map(&operand_shape).collect();
        let st = stmt_structure(stmt, &arg_shapes, &shapes.stmts[si]);
        if st.ops.is_empty() {
            continue; // Scalar-ish statements fold into the parent.
        }
        let domain = ft_affine::ConstraintSet::from_box(
            &vec![0i64; st.extents.len()],
            &st.extents.iter().map(|&e| e as i64).collect::<Vec<_>>(),
        )?;
        let child = BlockNode {
            name: format!("{}/stmt{}:{:?}", block.name, si, stmt.op),
            ops: st.ops,
            extents: st.extents,
            domain,
            // Children operate on register-resident UDF temporaries; no
            // buffer-node traffic of their own.
            reads: Vec::new(),
            writes: Vec::new(),
            udf: Udf {
                name: format!("{:?}", stmt.op),
                stmts: vec![Stmt {
                    op: stmt.op.clone(),
                    args: stmt.args.clone(),
                }],
                outputs: vec![ft_core::expr::Operand::Tmp(0)],
                num_inputs: block.udf.num_inputs,
            },
            children: Vec::new(),
            parent: Some(id),
            src_nest: block.src_nest,
        };
        etdg.blocks.push(child);
        child_ids.push(BlockId(etdg.blocks.len() - 1));
    }
    etdg.blocks[id.0].children = child_ids.clone();
    Ok(child_ids)
}

/// Hoists a map dimension shared by *every* child into the parent: if each
/// child's outermost operator is a `map` of one common extent, the parent
/// gains that dimension (as an innermost `map`) and the children shrink;
/// children left zero-dimensional dissolve back into the parent.
///
/// On the running example this turns the lowered region into Figure 5's
/// two-depth graph: a 4-dim parent (`map, scanl, scanl, map`) and one
/// 1-dim reduction child.
pub fn hoist_shared_map(etdg: &mut Etdg, id: BlockId) -> Result<bool> {
    let children = etdg.block(id).children.clone();
    if children.is_empty() {
        return Ok(false);
    }
    let mut shared: Option<usize> = None;
    for &c in &children {
        let child = etdg.block(c);
        let Some((&op, &extent)) = child.ops.first().zip(child.extents.first()) else {
            return Ok(false);
        };
        if op != OpKind::Map {
            return Ok(false);
        }
        match shared {
            None => shared = Some(extent),
            Some(e) if e == extent => {}
            _ => return Ok(false),
        }
    }
    let extent = shared.expect("children verified non-empty");
    // Parent gains the dim.
    {
        let parent = &mut etdg.blocks[id.0];
        parent.ops.push(OpKind::Map);
        parent.extents.push(extent);
        parent.domain = ft_affine::ConstraintSet::from_box(
            &vec![0i64; parent.extents.len()],
            &parent.extents.iter().map(|&e| e as i64).collect::<Vec<_>>(),
        )?;
    }
    // Children lose it; empty children dissolve.
    let mut keep = Vec::new();
    for &c in &children {
        let child = &mut etdg.blocks[c.0];
        child.ops.remove(0);
        child.extents.remove(0);
        if child.ops.is_empty() {
            // Fully fused into the parent: keep the parent pointer (so it is
            // never mistaken for a root) but drop it from the child list.
            continue;
        }
        child.domain = ft_affine::ConstraintSet::from_box(
            &vec![0i64; child.extents.len()],
            &child.extents.iter().map(|&e| e as i64).collect::<Vec<_>>(),
        )?;
        keep.push(c);
    }
    // Remove dissolved children from the graph (detach-only here; ids of
    // kept children are stable).
    let dissolved: Vec<BlockId> = children
        .iter()
        .copied()
        .filter(|c| !keep.contains(c))
        .collect();
    etdg.blocks[id.0].children = keep;
    for d in dissolved {
        etdg.blocks[d.0].name.push_str(" (fused)");
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_etdg::parse_program;

    #[test]
    fn matmul_statement_structure() {
        use ft_core::expr::Operand;
        let stmt = Stmt {
            op: OpCode::MatMul,
            args: vec![Operand::In(0), Operand::In(1)],
        };
        let st = stmt_structure(
            &stmt,
            &[Shape::new(&[1, 512]), Shape::new(&[512, 512])],
            &Shape::new(&[1, 512]),
        );
        assert_eq!(st.ops, vec![OpKind::Map, OpKind::Reduce]);
        assert_eq!(st.extents, vec![512, 512]);
    }

    #[test]
    fn elementwise_statement_structure() {
        use ft_core::expr::Operand;
        let stmt = Stmt {
            op: OpCode::Add,
            args: vec![Operand::In(0), Operand::In(1)],
        };
        let st = stmt_structure(
            &stmt,
            &[Shape::new(&[1, 512]), Shape::new(&[1, 512])],
            &Shape::new(&[1, 512]),
        );
        assert_eq!(st.ops, vec![OpKind::Map]);
        assert_eq!(st.extents, vec![512]);
    }

    #[test]
    fn lowering_region3_reproduces_figure5() {
        let p = stacked_rnn_program(2, 3, 4, 512);
        let mut g = parse_program(&p).unwrap();
        let region3 = BlockId(3);
        // Lower: the UDF y = x@w + s yields a matmul child (map, reduce)
        // and an add child (map).
        let children = lower_block(&mut g, region3).unwrap();
        assert_eq!(children.len(), 2);
        assert_eq!(g.block(children[0]).ops, vec![OpKind::Map, OpKind::Reduce]);
        assert_eq!(g.block(children[1]).ops, vec![OpKind::Map]);
        // Hoist the shared hidden-dim map: Figure 5's two-depth result —
        // the parent becomes 4-dimensional and a single 1-dim reduction
        // child remains.
        assert!(hoist_shared_map(&mut g, region3).unwrap());
        let parent = g.block(region3);
        assert_eq!(
            parent.ops,
            vec![OpKind::Map, OpKind::ScanL, OpKind::ScanL, OpKind::Map]
        );
        assert_eq!(parent.extents, vec![2, 3, 4, 512]);
        assert_eq!(parent.children.len(), 1);
        let child = g.block(parent.children[0]);
        assert_eq!(child.ops, vec![OpKind::Reduce]);
        assert_eq!(child.extents, vec![512]);
    }

    #[test]
    fn lowering_updates_metrics() {
        let p = stacked_rnn_program(2, 3, 4, 512);
        let mut g = parse_program(&p).unwrap();
        // Pre-lowering metrics (Figure 4): depth 2, dimension 5.
        assert_eq!(g.depth(), 2);
        assert_eq!(g.dimension(), 5);
        let region3 = BlockId(3);
        lower_block(&mut g, region3).unwrap();
        hoist_shared_map(&mut g, region3).unwrap();
        // Post-Figure-5 coarsening the longest path is the 4-dim parent
        // plus the 1-dim reduction child: still depth 2, dimension 5.
        assert_eq!(g.depth(), 2);
        assert_eq!(g.dimension(), 5);
    }

    #[test]
    fn double_lowering_rejected() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let mut g = parse_program(&p).unwrap();
        lower_block(&mut g, BlockId(3)).unwrap();
        assert!(lower_block(&mut g, BlockId(3)).is_err());
    }
}
