//! Dependence distance vectors (paper Table 4), derived from access maps.
//!
//! Only aggregate operators introduce dependencies: iteration `t` of a scan
//! reads what iteration `t - δ` wrote. With a single-assignment identity
//! write map, the distance `δ` is exactly the negation of the self-read's
//! offset vector — so a shifted linear read (`l-1`) gives distance 1 and a
//! strided read under a dilation-4 scan (`l-4`) gives distance 4, the
//! adjustment the paper describes.

use ft_etdg::{BlockId, Etdg, RegionRead};

use crate::{PassError, Result};

/// Computes the set of dependence distance vectors carried by a block node.
///
/// For every *self-read* (a read of a buffer this block also writes), the
/// distance is solved from the write and read maps; when a block has an
/// aggregate dimension with no self-read witnessing it (e.g. an associative
/// `reduce` whose accumulation order is free), the Table 4 default — the
/// unit vector of that dimension — is used.
pub fn distance_vectors(etdg: &Etdg, id: BlockId) -> Result<Vec<Vec<i64>>> {
    let block = etdg.block(id);
    let d = block.dims();
    let mut distances: Vec<Vec<i64>> = Vec::new();
    let mut witnessed = vec![false; d];

    // Buffers written by any region of the same nest (regions of one nest
    // share the logical output buffer, so a read of a sibling's output is
    // still the same carried dependence).
    let written: Vec<_> = etdg
        .blocks
        .iter()
        .filter(|b| b.src_nest == block.src_nest)
        .flat_map(|b| b.writes.iter().map(|w| w.buffer))
        .collect();

    for read in &block.reads {
        let RegionRead::Buffer { buffer, map } = read else {
            continue;
        };
        if !written.contains(buffer) {
            continue;
        }
        let write = block
            .writes
            .iter()
            .find(|w| w.buffer == *buffer)
            .or_else(|| block.writes.first())
            .ok_or_else(|| PassError::Invalid(format!("block '{}' has no writes", block.name)))?;
        // Solve M_w (t - δ) + o_w = M_r t + o_r for constant δ. This has a
        // constant solution iff M_w == M_r; then M_w δ = o_w - o_r. For the
        // identity-style write maps produced by the parser we read δ off
        // directly; non-matching matrices fall back to the Table 4 default.
        if write.map.matrix() == map.matrix() {
            let rhs: Vec<i64> = write
                .map
                .offset()
                .iter()
                .zip(map.offset().iter())
                .map(|(&w, &r)| w - r)
                .collect();
            if let Some(delta) = solve_identity_like(write.map.matrix(), &rhs, d) {
                if delta.iter().any(|&x| x != 0) {
                    for (k, &v) in delta.iter().enumerate() {
                        if v != 0 {
                            witnessed[k] = true;
                        }
                    }
                    if !distances.contains(&delta) {
                        distances.push(delta);
                    }
                }
            }
        }
    }

    // Table 4 defaults for unwitnessed aggregate dimensions (reversed
    // operators carry their dependence toward smaller indices).
    for dim in block.aggregate_dims() {
        if !witnessed[dim] {
            let mut delta = vec![0i64; d];
            delta[dim] = if block.ops[dim].is_reversed() { -1 } else { 1 };
            if !distances.contains(&delta) {
                distances.push(delta);
            }
        }
    }
    Ok(distances)
}

/// Solves `M δ = rhs` when `M` has one `1` per row (projection-like maps);
/// unconstrained components of `δ` are zero.
fn solve_identity_like(m: &ft_affine::IntMat, rhs: &[i64], d: usize) -> Option<Vec<i64>> {
    let mut delta = vec![0i64; d];
    for (row, &r) in rhs.iter().enumerate().take(m.rows()) {
        let nonzeros: Vec<usize> = (0..m.cols()).filter(|&c| m.get(row, c) != 0).collect();
        match nonzeros.as_slice() {
            [] => {
                if r != 0 {
                    return None;
                }
            }
            [c] => {
                let coeff = m.get(row, *c);
                if r % coeff != 0 {
                    return None;
                }
                delta[*c] = r / coeff;
            }
            _ => return None,
        }
    }
    Some(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_etdg::parse_program;

    #[test]
    fn running_example_interior_distances() {
        // Region 3 carries both scans: distances [0,1,0] (layer) and
        // [0,0,1] (time) — the §5.2 example's d1 and d2.
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        let d = distance_vectors(&g, BlockId(3)).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.contains(&vec![0, 1, 0]));
        assert!(d.contains(&vec![0, 0, 1]));
    }

    #[test]
    fn boundary_region_carries_fewer_distances() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        // Region 0 (d=0, l=0) reads only inputs/zeros — but its aggregate
        // dims still get Table 4 defaults (the operators are scans even if
        // this region's instances happen to be independent).
        let d0 = distance_vectors(&g, BlockId(0)).unwrap();
        assert!(d0.contains(&vec![0, 1, 0]));
        assert!(d0.contains(&vec![0, 0, 1]));
        // Region 1 (d=0, l>0) witnesses the time scan via its self-read.
        let d1 = distance_vectors(&g, BlockId(1)).unwrap();
        assert!(d1.contains(&vec![0, 0, 1]));
    }

    #[test]
    fn map_dimension_carries_no_distance() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let g = parse_program(&p).unwrap();
        for b in 0..4 {
            for delta in distance_vectors(&g, BlockId(b)).unwrap() {
                assert_eq!(delta[0], 0, "batch (map) dim must carry nothing");
            }
        }
    }

    #[test]
    fn strided_scan_adjusts_distance() {
        // The paper: "a strided linear access operator with a stride of 4,
        // when combined with a scan, adjusts the dependence distance to 4."
        use ft_core::expr::UdfBuilder;
        use ft_core::{AccessSpec, AxisExpr, CarriedInit, Nest, OpKind, Program, Read, Write};
        let (n, l, h) = (2usize, 12usize, 4usize);
        let mut p = Program::new("dilated");
        let xs = p.input("xs", &[n, l], &[1, h]);
        let w = p.input("w", &[1], &[h, h]);
        let ys = p.output("ys", &[n, l], &[1, h]);
        let mut b = UdfBuilder::new("cell", 3);
        let (x, wt, s) = (b.input(0), b.input(1), b.input(2));
        let xw = b.matmul(x, wt);
        let y = b.add(xw, s);
        let udf = b.build(&[y]);
        p.add_nest(Nest {
            name: "dilated".into(),
            ops: vec![OpKind::Map, OpKind::ScanL],
            extents: vec![n, l],
            reads: vec![
                Read::plain(xs, AccessSpec::identity(2)),
                Read::plain(w, AccessSpec::new(vec![AxisExpr::constant(0)])),
                Read::carried(
                    ys,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, -4)]),
                    CarriedInit::Zero,
                ),
            ],
            writes: vec![Write {
                buffer: ys,
                access: AccessSpec::identity(2),
            }],
            udf,
        })
        .unwrap();
        let g = parse_program(&p).unwrap();
        // The interior region (last block) must carry distance 4 on dim 1.
        let last = BlockId(g.blocks.len() - 1);
        let d = distance_vectors(&g, last).unwrap();
        assert!(d.contains(&vec![0, 4]), "distances: {d:?}");
    }
}
