//! Shape-polymorphic plans: one compiled schedule serving every outer
//! extent.
//!
//! The schedule a program compiles to (§5.1–§5.2) depends on loop
//! *structure*; for a program whose outer axis is a pure `map`
//! (`ft_core::poly::analyze_outer`), the extent of that axis affects only
//! how *wide* the wavefront runs and how *large* the batched buffers are.
//! This module exploits that:
//!
//! * [`plan_memory_symbolic`] re-runs the layout/lifetime pass of
//!   `crate::layout` with sizes in [`ft_affine::Lin`] — degree-1 formulas
//!   `c0 + c1·L` over the symbolic extent — producing a [`MemoryTemplate`]
//!   whose stride/size/offset formulas are **evaluated at dispatch** for
//!   whatever extent traffic brings.
//! * [`PolyPlan`] is a compiled *family*: the structure passes run once at
//!   a template extent; [`PolyPlan::instance`] stamps out the plan for a
//!   concrete extent by re-extenting the program, re-running only the
//!   (cheap, structure-preserving) scheduling passes, and evaluating the
//!   memory template — no fresh lifetime analysis, no fresh first-fit.
//! * [`PolyCache`] keys families by the shape-insensitive
//!   [`ft_core::StructKey`], with the same byte-verified collision
//!   discipline as [`crate::PlanCache`]: one entry serves a whole length
//!   distribution.
//!
//! Soundness of the symbolic first-fit: a free range is reused only when
//! it *dominates* the request componentwise ([`Lin::dominates`]), which
//! implies it fits at **every** extent, so evaluated arena ranges of
//! simultaneously-live buffers are disjoint for all `L` — conservative
//! (some reuse opportunities that exist at one concrete extent are
//! skipped), never incorrect. Each instantiation additionally cross-checks
//! the evaluated per-buffer lengths against the instance's real shapes and
//! falls back to the concrete planner (counting
//! `passes.poly_template_fallback`) on any mismatch.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use ft_affine::Lin;
use ft_core::poly::with_outer_extent;
use ft_core::sig::{poly_split, PolySplit};
use ft_core::{BufferKind, OuterInfo, Program, StructKey};
use ft_etdg::Etdg;

use crate::layout::{plan_memory, BufferLayout, MemoryPlan, Placement};
use crate::pipeline::{compile_scheduled, CompiledProgram, ScheduledGroup};
use crate::{PassError, Result};

/// The symbolic layout of one buffer: everything extent-independent is
/// concrete, everything extent-dependent is a [`Lin`] formula.
#[derive(Debug, Clone)]
pub struct SymBufferLayout {
    /// Whether the buffer's outer dimension scales with the extent.
    pub batched: bool,
    /// Extent-independent dimensions: `dims[1..]` for batched buffers
    /// (the outer slot is the symbolic extent), all of `dims` for shared.
    pub fixed_dims: Vec<usize>,
    /// Static leaf shape.
    pub leaf_dims: Vec<usize>,
    /// Row-major leaf strides. These are *constants* even for batched
    /// buffers: stride `r` is the product of dims `r+1..`, which never
    /// includes the outer extent.
    pub leaf_strides: Vec<i64>,
    /// True for caller-owned extern inputs.
    pub is_extern: bool,
    /// Arena offset formula (unused for extern buffers).
    pub offset: Lin,
    /// Written-bitmap offset formula (unused for extern buffers).
    pub slot_off: Lin,
    /// Flat length formula in elements.
    pub len: Lin,
    /// Leaf-count formula.
    pub leaves: Lin,
    /// Live interval in group execution order (extent-invariant).
    pub live: (usize, usize),
}

/// A memory plan with its sizes kept symbolic over the outer extent:
/// the "stride/size formulas evaluated at dispatch" artifact.
#[derive(Debug, Clone)]
pub struct MemoryTemplate {
    /// Per-buffer symbolic layouts, indexed by `BufId`.
    pub buffers: Vec<SymBufferLayout>,
    /// Arena length formula.
    pub arena_len: Lin,
    /// Written-bitmap length formula.
    pub slots_len: Lin,
    /// Free-list reuses the symbolic first-fit performed.
    pub reused_ranges: usize,
    /// The concrete extent the template was derived at.
    pub template_extent: usize,
}

impl MemoryTemplate {
    /// Evaluates every formula at extent `l`, producing the concrete
    /// [`MemoryPlan`] the executor consumes. Pure arithmetic — no
    /// liveness analysis, no allocation decisions — so this is cheap
    /// enough for the dispatch path.
    pub fn evaluate(&self, l: usize) -> MemoryPlan {
        let buffers = self
            .buffers
            .iter()
            .map(|b| {
                let dims: Vec<usize> = if b.batched {
                    std::iter::once(l)
                        .chain(b.fixed_dims.iter().copied())
                        .collect()
                } else {
                    b.fixed_dims.clone()
                };
                let leaf_len: usize = b.leaf_dims.iter().product();
                let leaves = b.leaves.eval(l);
                let placement = if b.is_extern {
                    Placement::Extern
                } else {
                    Placement::Arena {
                        offset: b.offset.eval(l),
                        slot_off: b.slot_off.eval(l),
                    }
                };
                BufferLayout {
                    dims,
                    leaf_dims: b.leaf_dims.clone(),
                    leaf_len,
                    leaves,
                    len: b.len.eval(l),
                    leaf_strides: b.leaf_strides.clone(),
                    placement,
                    live: b.live,
                }
            })
            .collect();
        MemoryPlan {
            buffers,
            arena_len: self.arena_len.eval(l),
            slots_len: self.slots_len.eval(l),
            reused_ranges: self.reused_ranges,
        }
    }
}

fn lin_err(e: ft_affine::AffineError) -> PassError {
    PassError::Affine(e.to_string())
}

/// The symbolic size of buffer `bi`: `(leaves, len)` as formulas.
fn sym_size(etdg: &Etdg, bi: usize, batched: bool) -> Result<(Lin, Lin)> {
    let buf = &etdg.buffers[bi];
    let leaf_len: usize = buf.leaf_shape.dims().iter().product();
    let leaves = if batched {
        // dims[0] is the symbolic extent; the rest are fixed.
        Lin::scaled(buf.dims[1..].iter().product())
    } else {
        Lin::constant(buf.dims.iter().product())
    };
    let len = leaves.scale(leaf_len).map_err(lin_err)?;
    Ok((leaves, len))
}

/// Builds the symbolic layout record for buffer `bi`.
fn make_sym_layout(
    etdg: &Etdg,
    bi: usize,
    batched: bool,
    is_extern: bool,
    offset: Lin,
    slot_off: Lin,
    live: (usize, usize),
) -> Result<SymBufferLayout> {
    let buf = &etdg.buffers[bi];
    let (leaves, len) = sym_size(etdg, bi, batched)?;
    let fixed_dims = if batched {
        buf.dims[1..].to_vec()
    } else {
        buf.dims.clone()
    };
    Ok(SymBufferLayout {
        batched,
        fixed_dims,
        leaf_dims: buf.leaf_shape.dims().to_vec(),
        leaf_strides: crate::layout::leaf_strides(&buf.dims),
        is_extern,
        offset,
        slot_off,
        len,
        leaves,
        live,
    })
}

/// [`crate::layout::plan_memory`] with every size a [`Lin`] formula over
/// the outer extent.
///
/// `etdg`/`groups` are the structure passes' output at the template
/// extent; `batched[bi]` says whether buffer `bi`'s outer dimension is
/// the symbolic extent (`ft_core::OuterInfo::batched` — buffer ids map
/// 1:1 from program to ETDG). Liveness and the group timeline are
/// extent-invariant for poly-eligible programs (the verifier checks this
/// across extents); only the first-fit changes: a free range is reused
/// only when it dominates the request at **every** extent.
pub fn plan_memory_symbolic(
    etdg: &Etdg,
    groups: &[ScheduledGroup],
    batched: &[bool],
    template_extent: usize,
) -> Result<MemoryTemplate> {
    let nbuf = etdg.buffers.len();
    if batched.len() != nbuf {
        return Err(PassError::Invalid(format!(
            "batched mask covers {} buffers, graph has {nbuf}",
            batched.len()
        )));
    }
    let end = groups.len();
    let mut first = vec![end; nbuf];
    let mut last = vec![0usize; nbuf];
    for (gi, g) in groups.iter().enumerate() {
        for &m in &g.members {
            let block = etdg.block(m);
            let touched = block
                .reads
                .iter()
                .filter_map(|r| r.buffer())
                .chain(block.writes.iter().map(|w| w.buffer));
            for b in touched {
                first[b.0] = first[b.0].min(gi);
                last[b.0] = last[b.0].max(gi);
            }
        }
    }
    let live_end: Vec<usize> = (0..nbuf)
        .map(|bi| {
            if etdg.buffers[bi].kind == BufferKind::Output {
                end
            } else {
                last[bi]
            }
        })
        .collect();

    // Symbolic first-fit over the group timeline; free ranges are
    // `(offset, len)` formulas kept sorted by (c0, c1) for determinism.
    let mut layouts: Vec<Option<SymBufferLayout>> = vec![None; nbuf];
    let mut free: Vec<(Lin, Lin)> = Vec::new();
    let mut arena_len = Lin::ZERO;
    let mut slots_len = Lin::ZERO;
    let mut reused_ranges = 0usize;

    for gi in 0..=end {
        for bi in 0..nbuf {
            if live_end[bi] + 1 == gi && first[bi] <= last[bi] {
                if let Some(
                    l @ SymBufferLayout {
                        is_extern: false, ..
                    },
                ) = &layouts[bi]
                {
                    if !l.len.is_zero() {
                        free.push((l.offset, l.len));
                        free.sort_unstable_by_key(|&(o, _)| (o.c0, o.c1));
                    }
                }
            }
        }
        if gi == end {
            break;
        }
        for bi in 0..nbuf {
            if first[bi] != gi || layouts[bi].is_some() {
                continue;
            }
            let buf = &etdg.buffers[bi];
            let live_to = live_end[bi];
            if buf.kind == BufferKind::Input {
                layouts[bi] = Some(make_sym_layout(
                    etdg,
                    bi,
                    batched[bi],
                    true,
                    Lin::ZERO,
                    Lin::ZERO,
                    (gi, end),
                )?);
                continue;
            }
            let (leaves, need) = sym_size(etdg, bi, batched[bi])?;
            let mut offset = None;
            if let Some(pos) = free.iter().position(|(_, flen)| flen.dominates(&need)) {
                let (foff, flen) = free.remove(pos);
                offset = Some(foff);
                let remainder = flen.sub(need).map_err(lin_err)?;
                if !remainder.is_zero() {
                    free.push((foff.add(need).map_err(lin_err)?, remainder));
                    free.sort_unstable_by_key(|&(o, _)| (o.c0, o.c1));
                }
                reused_ranges += 1;
            }
            let offset = match offset {
                Some(o) => o,
                None => {
                    let o = arena_len;
                    arena_len = arena_len.add(need).map_err(lin_err)?;
                    o
                }
            };
            let slot_off = slots_len;
            slots_len = slots_len.add(leaves).map_err(lin_err)?;
            layouts[bi] = Some(make_sym_layout(
                etdg,
                bi,
                batched[bi],
                false,
                offset,
                slot_off,
                (gi, live_to),
            )?);
        }
    }

    // Untouched buffers: pinned whole-program, as in the concrete planner.
    let mut buffers = Vec::with_capacity(nbuf);
    for (bi, l) in layouts.into_iter().enumerate() {
        buffers.push(match l {
            Some(l) => l,
            None => {
                let buf = &etdg.buffers[bi];
                if buf.kind == BufferKind::Input {
                    make_sym_layout(etdg, bi, batched[bi], true, Lin::ZERO, Lin::ZERO, (0, end))?
                } else {
                    let (leaves, need) = sym_size(etdg, bi, batched[bi])?;
                    let offset = arena_len;
                    arena_len = arena_len.add(need).map_err(lin_err)?;
                    let slot_off = slots_len;
                    slots_len = slots_len.add(leaves).map_err(lin_err)?;
                    make_sym_layout(etdg, bi, batched[bi], false, offset, slot_off, (0, end))?
                }
            }
        });
    }

    Ok(MemoryTemplate {
        buffers,
        arena_len,
        slots_len,
        reused_ranges,
        template_extent,
    })
}

/// A compiled program *family*: structure passes run once, instances at
/// concrete outer extents stamped out on demand (see the module docs).
pub struct PolyPlan {
    /// The program at the template extent (structure donor for
    /// re-extenting).
    program: Program,
    /// The signature split: family key, masked bytes, buffer roles.
    split: PolySplit,
    /// The symbolic memory plan.
    template: MemoryTemplate,
    /// Concrete instances by outer extent.
    instances: RwLock<HashMap<usize, Arc<CompiledProgram>>>,
    /// Per-extent build claims: concurrent read-misses for one extent
    /// serialize on the extent's claim lock so exactly one caller compiles
    /// while different extents still build in parallel.
    building: Mutex<HashMap<usize, Arc<Mutex<()>>>>,
    /// Instances built (not served from the instance memo).
    instantiations: AtomicU64,
    /// Instantiations whose template cross-check failed (fell back to the
    /// concrete planner).
    template_fallbacks: AtomicU64,
}

impl PolyPlan {
    /// Builds the family for `program`, or `None` when its outer axis is
    /// not polymorphic. The template extent is the program's own extent;
    /// the instance memo is primed with it.
    pub fn build(program: &Program) -> Result<Option<PolyPlan>> {
        let Some(split) = poly_split(program) else {
            return Ok(None);
        };
        let (etdg, _plan, groups) = compile_scheduled(program)?;
        let template =
            plan_memory_symbolic(&etdg, &groups, &split.info.batched, split.outer_extent)?;
        let plan = PolyPlan {
            program: program.clone(),
            split,
            template,
            instances: RwLock::new(HashMap::new()),
            building: Mutex::new(HashMap::new()),
            instantiations: AtomicU64::new(0),
            template_fallbacks: AtomicU64::new(0),
        };
        plan.instance(plan.split.outer_extent)?;
        Ok(Some(plan))
    }

    /// The shape-insensitive family key.
    pub fn key(&self) -> StructKey {
        self.split.key
    }

    /// The masked structural bytes backing the key (family identity for
    /// byte-verified cache hits).
    pub fn bytes(&self) -> &[u8] {
        &self.split.bytes
    }

    /// Buffer roles along the polymorphic axis.
    pub fn info(&self) -> &OuterInfo {
        &self.split.info
    }

    /// The symbolic memory plan.
    pub fn template(&self) -> &MemoryTemplate {
        &self.template
    }

    /// The extent the template was derived at.
    pub fn template_extent(&self) -> usize {
        self.split.outer_extent
    }

    /// Instances currently memoized.
    pub fn cached_instances(&self) -> usize {
        self.instances.read().map(|m| m.len()).unwrap_or(0)
    }

    /// Instances built so far (memo misses).
    pub fn instantiations(&self) -> u64 {
        self.instantiations.load(Ordering::Relaxed)
    }

    /// Instantiations that failed the template cross-check and fell back
    /// to the concrete planner.
    pub fn template_fallbacks(&self) -> u64 {
        self.template_fallbacks.load(Ordering::Relaxed)
    }

    /// The concrete plan for outer extent `l`: memoized, else stamped out
    /// by re-extenting the program, re-running the structure passes, and
    /// evaluating the memory template at `l` (dispatch-time stride/size
    /// evaluation — the lifetime analysis and first-fit never re-run).
    pub fn instance(&self, l: usize) -> Result<Arc<CompiledProgram>> {
        if l == 0 {
            return Err(PassError::Invalid(
                "cannot instantiate a plan at outer extent 0".into(),
            ));
        }
        if let Ok(m) = self.instances.read() {
            if let Some(p) = m.get(&l) {
                return Ok(Arc::clone(p));
            }
        }
        // Read miss: claim the extent so concurrent missers for one `l`
        // cost exactly one compile (and one counter bump) while other
        // extents keep building in parallel. A poisoned claim table or
        // claim lock degrades to unserialized builds — the memo insert in
        // `build_instance` still keeps a single canonical instance.
        let claim = match self.building.lock() {
            Ok(mut b) => Arc::clone(b.entry(l).or_default()),
            Err(_) => Arc::new(Mutex::new(())),
        };
        let held = match claim.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Double-check under the claim: the racer that held it before us
        // may have published the instance already.
        let published = self
            .instances
            .read()
            .ok()
            .and_then(|m| m.get(&l).map(Arc::clone));
        let out = match published {
            Some(p) => Ok(p),
            None => self.build_instance(l),
        };
        drop(held);
        if let Ok(mut b) = self.building.lock() {
            b.remove(&l);
        }
        out
    }

    /// Compiles and publishes the instance at `l`. The caller holds the
    /// extent's build claim; errors leave no memo entry, so later callers
    /// retry the compile.
    fn build_instance(&self, l: usize) -> Result<Arc<CompiledProgram>> {
        let inst_program = with_outer_extent(&self.program, &self.split.info, l);
        let (etdg, plan, groups) = compile_scheduled(&inst_program)?;
        let memory = {
            let evaluated = self.template.evaluate(l);
            if template_matches(&evaluated, &etdg) {
                evaluated
            } else {
                // Formula drift (should not happen for verified families):
                // degrade to a fresh concrete layout, never to a bad plan.
                self.template_fallbacks.fetch_add(1, Ordering::Relaxed);
                ft_obs::Registry::global()
                    .counter("passes.poly_template_fallback")
                    .inc();
                ft_probe::counter("passes.poly_template_fallback", 1.0);
                plan_memory(&etdg, &groups)
            }
        };
        self.instantiations.fetch_add(1, Ordering::Relaxed);
        ft_obs::Registry::global()
            .counter("passes.plan_instantiations")
            .inc();
        ft_probe::counter("passes.plan_instantiations", 1.0);
        let compiled = Arc::new(CompiledProgram {
            etdg,
            plan,
            groups,
            memory,
        });
        let out = match self.instances.write() {
            Ok(mut m) => Arc::clone(m.entry(l).or_insert_with(|| Arc::clone(&compiled))),
            // Poisoned memo degrades to uncached instances.
            Err(_) => compiled,
        };
        Ok(out)
    }
}

/// The dispatch-time safety net: evaluated layouts must agree with the
/// instance graph's real shapes on every buffer.
fn template_matches(evaluated: &MemoryPlan, etdg: &Etdg) -> bool {
    evaluated.buffers.len() == etdg.buffers.len()
        && evaluated.buffers.iter().zip(&etdg.buffers).all(|(l, b)| {
            let leaf_len: usize = b.leaf_shape.dims().iter().product();
            let leaves: usize = b.dims.iter().product();
            l.dims == b.dims && l.leaves == leaves && l.len == leaves * leaf_len
        })
}

impl std::fmt::Debug for PolyPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolyPlan")
            .field("key", &self.split.key)
            .field("template_extent", &self.split.outer_extent)
            .field("cached_instances", &self.cached_instances())
            .finish()
    }
}

/// One verified family slot (masked structural bytes + the family).
struct FamilyEntry {
    bytes: Box<[u8]>,
    family: Arc<PolyPlan>,
}

/// A concurrent cache of plan families keyed by the shape-insensitive
/// [`StructKey`], with byte-exact verification of the *masked* structural
/// bytes on every hit — the same collision discipline as
/// [`crate::PlanCache`], one level up: a single entry here serves every
/// outer extent of one program structure.
#[derive(Default)]
pub struct PolyCache {
    map: RwLock<HashMap<StructKey, Vec<FamilyEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PolyCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached families.
    pub fn len(&self) -> usize {
        self.map
            .read()
            .map(|m| m.values().map(Vec::len).sum())
            .unwrap_or(0)
    }

    /// True when no family is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Family-cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Family-cache misses (= family builds) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Concrete instances memoized across all cached families.
    pub fn cached_instances(&self) -> usize {
        self.map
            .read()
            .map(|m| {
                m.values()
                    .flatten()
                    .map(|e| e.family.cached_instances())
                    .sum()
            })
            .unwrap_or(0)
    }

    fn lookup_verified(&self, split: &PolySplit) -> Option<Arc<PolyPlan>> {
        let found = self.map.read().ok().and_then(|m| {
            m.get(&split.key)?
                .iter()
                .find(|e| *e.bytes == *split.bytes)
                .map(|e| Arc::clone(&e.family))
        });
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ft_obs::Registry::global()
                .counter("passes.poly_cache_hits")
                .inc();
            ft_probe::counter("passes.poly_cache_hits", 1.0);
        }
        found
    }

    /// The cached family for `split`'s structure, or builds one with
    /// `build_fn` (e.g. `ft-verify`'s `build_poly_verified`) and caches
    /// it. The `bool` is true on a cache hit. `build_fn` runs outside any
    /// lock; racing builders both succeed and the first insert wins.
    pub fn get_or_build_with<E>(
        &self,
        program: &Program,
        split: &PolySplit,
        build_fn: impl FnOnce(&Program) -> std::result::Result<PolyPlan, E>,
    ) -> std::result::Result<(Arc<PolyPlan>, bool), E> {
        if let Some(family) = self.lookup_verified(split) {
            return Ok((family, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        ft_obs::Registry::global()
            .counter("passes.poly_cache_misses")
            .inc();
        ft_probe::counter("passes.poly_cache_misses", 1.0);
        let built = Arc::new(build_fn(program)?);
        let family = match self.map.write() {
            Ok(mut m) => {
                let entries = m.entry(split.key).or_default();
                match entries.iter().find(|e| *e.bytes == *split.bytes) {
                    Some(e) => Arc::clone(&e.family),
                    None => {
                        entries.push(FamilyEntry {
                            bytes: split.bytes.clone().into_boxed_slice(),
                            family: Arc::clone(&built),
                        });
                        built
                    }
                }
            }
            Err(_) => built,
        };
        Ok((family, false))
    }
}

impl std::fmt::Debug for PolyCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolyCache")
            .field("families", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::compile;
    use ft_core::builders::stacked_rnn_program;

    #[test]
    fn template_evaluates_to_disjoint_layouts_at_every_extent() {
        let p = stacked_rnn_program(4, 3, 4, 8);
        let family = PolyPlan::build(&p).unwrap().expect("poly-eligible");
        for l in [1usize, 2, 4, 7, 64] {
            let m = family.template().evaluate(l);
            for (i, a) in m.buffers.iter().enumerate() {
                let Placement::Arena { offset: ao, .. } = a.placement else {
                    continue;
                };
                assert!(ao + a.len <= m.arena_len, "range exceeds arena at L={l}");
                for b in m.buffers.iter().skip(i + 1) {
                    let Placement::Arena { offset: bo, .. } = b.placement else {
                        continue;
                    };
                    let ranges_overlap = ao < bo + b.len && bo < ao + a.len;
                    let lives_overlap = a.live.0 <= b.live.1 && b.live.0 <= a.live.1;
                    assert!(
                        !(ranges_overlap && lives_overlap),
                        "live buffers share arena space at L={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn instances_match_exact_shape_compiles_structurally() {
        let p = stacked_rnn_program(4, 3, 4, 8);
        let family = PolyPlan::build(&p).unwrap().unwrap();
        for l in [1usize, 2, 4, 9, 32] {
            let inst = family.instance(l).unwrap();
            let fresh = compile(&stacked_rnn_program(l, 3, 4, 8)).unwrap();
            assert_eq!(inst.groups.len(), fresh.groups.len());
            for (a, b) in inst.groups.iter().zip(&fresh.groups) {
                assert_eq!(a.members, b.members);
                assert_eq!(a.ops, b.ops);
                assert_eq!(a.wavefront_steps(), b.wavefront_steps());
            }
            // Same shapes everywhere; arena size may differ (the symbolic
            // first-fit is conservative) but never under the concrete one.
            for (ia, fb) in inst.memory.buffers.iter().zip(&fresh.memory.buffers) {
                assert_eq!(ia.dims, fb.dims);
                assert_eq!(ia.len, fb.len);
                assert_eq!(ia.leaf_strides, fb.leaf_strides);
            }
            assert!(inst.memory.arena_len >= fresh.memory.arena_len);
            assert_eq!(
                family.template_fallbacks(),
                0,
                "template cross-check must hold at L={l}"
            );
        }
    }

    #[test]
    fn instance_memo_builds_each_extent_once() {
        let p = stacked_rnn_program(2, 2, 3, 8);
        let family = PolyPlan::build(&p).unwrap().unwrap();
        let built = family.instantiations();
        let a = family.instance(6).unwrap();
        let b = family.instance(6).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(family.instantiations(), built + 1);
        assert!(family.instance(0).is_err());
    }

    #[test]
    fn one_family_entry_serves_every_extent() {
        let cache = PolyCache::new();
        for l in [16usize, 24, 48, 96] {
            let p = stacked_rnn_program(l, 2, 3, 8);
            let split = ft_core::poly_split(&p).unwrap();
            let (family, _) = cache
                .get_or_build_with(&p, &split, |p| {
                    PolyPlan::build(p).map(|o| o.expect("poly-eligible"))
                })
                .unwrap();
            family.instance(l).unwrap();
        }
        assert_eq!(cache.len(), 1, "one structure, one family");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 3);
        assert!(cache.cached_instances() >= 4);
    }

    #[test]
    fn different_structures_occupy_different_families() {
        let cache = PolyCache::new();
        for p in [
            stacked_rnn_program(4, 2, 3, 8),
            stacked_rnn_program(4, 2, 3, 16), // hidden width differs
        ] {
            let split = ft_core::poly_split(&p).unwrap();
            cache
                .get_or_build_with(&p, &split, |p| {
                    PolyPlan::build(p).map(|o| o.expect("poly-eligible"))
                })
                .unwrap();
        }
        assert_eq!(cache.len(), 2);
    }
}
