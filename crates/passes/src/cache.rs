//! The compiled-plan cache: the cache-aware entry point to `compile()`.
//!
//! The whole point of computing an ETDG schedule (§5) is that it depends
//! only on program *structure* — once derived it is valid for every
//! invocation of that workload. [`PlanCache`] keys compiled programs by
//! [`ft_core::program_signature`] (a name-insensitive structural hash), so
//! repeated submissions of the same workload skip parse, coarsen, reorder
//! (and any caller-supplied verification) entirely and share one
//! `Arc<CompiledProgram>`.
//!
//! Concurrency: lookups take a read lock; a miss compiles *outside* any
//! lock and inserts under a short write lock. Two racing compilers of the
//! same signature both succeed and the first insert wins — wasted work, not
//! incorrectness. Hits and misses are counted on the cache and mirrored to
//! the `passes.plan_cache_hits` / `passes.plan_cache_misses` probe
//! counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use ft_core::{program_signature, Program, ProgramSig};

use crate::pipeline::{compile, CompiledProgram};
use crate::Result;

/// A concurrent signature-keyed cache of compiled programs.
#[derive(Default)]
pub struct PlanCache {
    map: RwLock<HashMap<ProgramSig, Arc<CompiledProgram>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.read().map(|m| m.len()).unwrap_or(0)
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compiles triggered through this cache) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The cached plan for a signature, if present (counts as a hit).
    pub fn get(&self, sig: ProgramSig) -> Option<Arc<CompiledProgram>> {
        let found = self.map.read().ok().and_then(|m| m.get(&sig).cloned());
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ft_probe::counter("passes.plan_cache_hits", 1.0);
        }
        found
    }

    /// Returns the cached plan for `program`'s structural signature, or
    /// compiles with [`compile`] and caches the result. The `bool` is true
    /// on a cache hit.
    pub fn get_or_compile(&self, program: &Program) -> Result<(Arc<CompiledProgram>, bool)> {
        self.get_or_compile_with(program, compile)
    }

    /// Like [`get_or_compile`](Self::get_or_compile) but with a custom
    /// compile function (e.g. `ft-verify`'s `compile_verified`), so callers
    /// can layer extra checks onto cold compiles without re-verifying hits.
    pub fn get_or_compile_with<E>(
        &self,
        program: &Program,
        compile_fn: impl FnOnce(&Program) -> std::result::Result<CompiledProgram, E>,
    ) -> std::result::Result<(Arc<CompiledProgram>, bool), E> {
        let sig = program_signature(program);
        if let Some(plan) = self.get(sig) {
            return Ok((plan, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        ft_probe::counter("passes.plan_cache_misses", 1.0);
        let compiled = Arc::new(compile_fn(program)?);
        let plan = match self.map.write() {
            Ok(mut m) => Arc::clone(m.entry(sig).or_insert_with(|| Arc::clone(&compiled))),
            // A poisoned map (writer panicked) degrades to uncached compiles.
            Err(_) => compiled,
        };
        Ok((plan, false))
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;

    #[test]
    fn second_lookup_hits() {
        let cache = PlanCache::new();
        let p = stacked_rnn_program(2, 3, 4, 8);
        let (a, hit_a) = cache.get_or_compile(&p).unwrap();
        let (b, hit_b) = cache.get_or_compile(&p).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn different_shapes_occupy_different_entries() {
        let cache = PlanCache::new();
        cache
            .get_or_compile(&stacked_rnn_program(2, 3, 4, 8))
            .unwrap();
        cache
            .get_or_compile(&stacked_rnn_program(2, 3, 5, 8))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn renamed_program_shares_the_entry() {
        let cache = PlanCache::new();
        let p = stacked_rnn_program(2, 3, 4, 8);
        let mut q = p.clone();
        q.name = "same_structure_other_name".into();
        for b in &mut q.buffers {
            b.name = format!("{}_renamed", b.name);
        }
        let (a, _) = cache.get_or_compile(&p).unwrap();
        let (b, hit) = cache.get_or_compile(&q).unwrap();
        assert!(hit, "renamed program must hit the cache");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn custom_compile_errors_propagate_and_cache_nothing() {
        let cache = PlanCache::new();
        let p = stacked_rnn_program(2, 3, 4, 8);
        let err: std::result::Result<_, String> =
            cache.get_or_compile_with(&p, |_| Err("verification failed".to_string()));
        assert!(err.is_err());
        assert!(cache.is_empty());
        // A later good compile still works.
        let (_, hit) = cache.get_or_compile(&p).unwrap();
        assert!(!hit);
    }
}
