//! The compiled-plan cache: the cache-aware entry point to `compile()`.
//!
//! The whole point of computing an ETDG schedule (§5) is that it depends
//! only on program *structure* — once derived it is valid for every
//! invocation of that workload. [`PlanCache`] keys compiled programs by
//! [`ft_core::program_signature`] (a name-insensitive structural hash), so
//! repeated submissions of the same workload skip parse, coarsen, reorder
//! (and any caller-supplied verification) entirely and share one
//! `Arc<CompiledProgram>`.
//!
//! Trust model: the signature is a fast non-cryptographic FNV-1a, and a
//! serving process accepts arbitrary programs, so a signature match is
//! treated as a *candidate*, never as proof of identity. Each entry stores
//! the program's canonical [`ft_core::structural_bytes`] and a hit is only
//! declared after byte-exact verification; programs whose signatures
//! collide (accidental at scale, or engineered — FNV is not
//! collision-resistant) simply occupy separate slots under one key. A
//! collision therefore costs one extra compile and can never return a plan
//! compiled from a different program.
//!
//! Concurrency: lookups take a read lock; a miss compiles *outside* any
//! lock and inserts under a short write lock. Two racing compilers of the
//! same signature both succeed and the first insert wins — wasted work, not
//! incorrectness. Hits and misses are counted on the cache and mirrored to
//! the `passes.plan_cache_hits` / `passes.plan_cache_misses` probe
//! counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use ft_core::{program_signature, structural_bytes, Program, ProgramSig};

use crate::pipeline::{compile, CompiledProgram};
use crate::Result;

/// One verified cache slot: the structural bytes the plan was compiled
/// from, plus the plan itself.
struct Entry {
    bytes: Box<[u8]>,
    plan: Arc<CompiledProgram>,
}

/// A concurrent signature-keyed cache of compiled programs with byte-exact
/// structural verification on every hit (see the module docs).
#[derive(Default)]
pub struct PlanCache {
    map: RwLock<HashMap<ProgramSig, Vec<Entry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached plans (colliding signatures count each slot).
    pub fn len(&self) -> usize {
        self.map
            .read()
            .map(|m| m.values().map(Vec::len).sum())
            .unwrap_or(0)
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (= compiles triggered through this cache) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The cached, structurally verified plan for `program`, if present
    /// (counts as a hit).
    pub fn get(&self, program: &Program) -> Option<Arc<CompiledProgram>> {
        let sig = program_signature(program);
        let bytes = structural_bytes(program);
        self.lookup_verified(sig, &bytes)
    }

    /// A lookup that only succeeds when the stored structural bytes match
    /// the probe's exactly — a colliding signature is a miss, not a hit.
    fn lookup_verified(&self, sig: ProgramSig, bytes: &[u8]) -> Option<Arc<CompiledProgram>> {
        let found = self.map.read().ok().and_then(|m| {
            m.get(&sig)?
                .iter()
                .find(|e| &*e.bytes == bytes)
                .map(|e| Arc::clone(&e.plan))
        });
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ft_obs::Registry::global()
                .counter("passes.plan_cache_hits")
                .inc();
            ft_probe::counter("passes.plan_cache_hits", 1.0);
        }
        found
    }

    /// Returns the cached plan for `program`'s structural signature, or
    /// compiles with [`compile`] and caches the result. The `bool` is true
    /// on a cache hit.
    pub fn get_or_compile(&self, program: &Program) -> Result<(Arc<CompiledProgram>, bool)> {
        self.get_or_compile_with(program, compile)
    }

    /// Like [`get_or_compile`](Self::get_or_compile) but with a custom
    /// compile function (e.g. `ft-verify`'s `compile_verified`), so callers
    /// can layer extra checks onto cold compiles without re-verifying hits.
    pub fn get_or_compile_with<E>(
        &self,
        program: &Program,
        compile_fn: impl FnOnce(&Program) -> std::result::Result<CompiledProgram, E>,
    ) -> std::result::Result<(Arc<CompiledProgram>, bool), E> {
        let sig = program_signature(program);
        let bytes = structural_bytes(program);
        if let Some(plan) = self.lookup_verified(sig, &bytes) {
            return Ok((plan, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        ft_obs::Registry::global()
            .counter("passes.plan_cache_misses")
            .inc();
        ft_probe::counter("passes.plan_cache_misses", 1.0);
        let compiled = Arc::new(compile_fn(program)?);
        let plan = match self.map.write() {
            Ok(mut m) => {
                let entries = m.entry(sig).or_default();
                // A racing compiler may have inserted this structure while
                // we compiled outside the lock: first insert wins.
                match entries.iter().find(|e| *e.bytes == *bytes) {
                    Some(e) => Arc::clone(&e.plan),
                    None => {
                        entries.push(Entry {
                            bytes: bytes.into_boxed_slice(),
                            plan: Arc::clone(&compiled),
                        });
                        compiled
                    }
                }
            }
            // A poisoned map (writer panicked) degrades to uncached compiles.
            Err(_) => compiled,
        };
        Ok((plan, false))
    }

    /// Test-only: plants `plan` under `sig` with arbitrary structural
    /// bytes, simulating a signature collision with a different program.
    #[cfg(test)]
    fn force_insert(&self, sig: ProgramSig, bytes: Vec<u8>, plan: Arc<CompiledProgram>) {
        if let Ok(mut m) = self.map.write() {
            m.entry(sig).or_default().push(Entry {
                bytes: bytes.into_boxed_slice(),
                plan,
            });
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;

    #[test]
    fn second_lookup_hits() {
        let cache = PlanCache::new();
        let p = stacked_rnn_program(2, 3, 4, 8);
        let (a, hit_a) = cache.get_or_compile(&p).unwrap();
        let (b, hit_b) = cache.get_or_compile(&p).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn different_shapes_occupy_different_entries() {
        let cache = PlanCache::new();
        cache
            .get_or_compile(&stacked_rnn_program(2, 3, 4, 8))
            .unwrap();
        cache
            .get_or_compile(&stacked_rnn_program(2, 3, 5, 8))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn renamed_program_shares_the_entry() {
        let cache = PlanCache::new();
        let p = stacked_rnn_program(2, 3, 4, 8);
        let mut q = p.clone();
        q.name = "same_structure_other_name".into();
        for b in &mut q.buffers {
            b.name = format!("{}_renamed", b.name);
        }
        let (a, _) = cache.get_or_compile(&p).unwrap();
        let (b, hit) = cache.get_or_compile(&q).unwrap();
        assert!(hit, "renamed program must hit the cache");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn custom_compile_errors_propagate_and_cache_nothing() {
        let cache = PlanCache::new();
        let p = stacked_rnn_program(2, 3, 4, 8);
        let err: std::result::Result<_, String> =
            cache.get_or_compile_with(&p, |_| Err("verification failed".to_string()));
        assert!(err.is_err());
        assert!(cache.is_empty());
        // A later good compile still works.
        let (_, hit) = cache.get_or_compile(&p).unwrap();
        assert!(!hit);
    }

    /// A signature collision must never hand back a plan compiled from a
    /// different program: plant a foreign plan under this program's exact
    /// signature (with foreign structural bytes) and check the lookup
    /// refuses it, recompiles, and keeps both slots.
    #[test]
    fn signature_collision_is_verified_not_trusted() {
        let cache = PlanCache::new();
        let p = stacked_rnn_program(2, 3, 4, 8);
        let sig = program_signature(&p);

        // The "other program" that happens to share p's signature.
        let foreign = stacked_rnn_program(2, 3, 5, 8);
        let foreign_plan = Arc::new(compile(&foreign).unwrap());
        cache.force_insert(sig, structural_bytes(&foreign), Arc::clone(&foreign_plan));

        assert!(
            cache.get(&p).is_none(),
            "colliding signature with different structure must miss"
        );
        let (plan, hit) = cache.get_or_compile(&p).unwrap();
        assert!(!hit, "collision must trigger a fresh compile");
        assert!(
            !Arc::ptr_eq(&plan, &foreign_plan),
            "must not serve the foreign program's plan"
        );
        assert_eq!(cache.len(), 2, "both structures live under one signature");

        // And from now on the real program hits its own verified slot.
        let (again, hit) = cache.get_or_compile(&p).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&plan, &again));
    }
}
