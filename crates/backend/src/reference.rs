//! The pre-pool executor, kept as a benchmark baseline and differential
//! oracle.
//!
//! This is the original execution strategy the persistent-pool executor in
//! [`crate::exec`] replaced: every wavefront step of every launch group
//! spawns fresh scoped threads over statically chunked points, each point
//! re-applies `Reordering::to_original` and the full access maps, and
//! cross-member intermediates forward through a hashed per-point overlay.
//! `bench_exec` measures [`execute_reference`] against [`crate::execute`]
//! to quantify the pool's win; the randomized tests run both against the
//! interpreter.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::interp::BufferStore;
use ft_core::program::BufferKind;
use ft_core::BufferId;
use ft_etdg::RegionRead;
use ft_passes::{CompiledProgram, ScheduledGroup};
use ft_tensor::Tensor;

use crate::exec::{core_err, points_into, ExecError};

/// Executes a compiled program by spawning scoped threads per wavefront
/// step (the pre-pool strategy). Semantics are identical to
/// [`crate::execute`]; only the execution substrate differs.
pub fn execute_reference(
    compiled: &CompiledProgram,
    inputs: &HashMap<BufferId, FractalTensor>,
    threads: usize,
) -> Result<HashMap<BufferId, FractalTensor>, ExecError> {
    let etdg = &compiled.etdg;
    let mut stores: Vec<BufferStore> = Vec::with_capacity(etdg.buffers.len());
    for (bi, buf) in etdg.buffers.iter().enumerate() {
        match buf.kind {
            BufferKind::Input => {
                let ft = inputs
                    .get(&BufferId(bi))
                    .ok_or_else(|| ExecError::Input(format!("missing input '{}'", buf.name)))?;
                if ft.prog_dims() != buf.dims {
                    return Err(ExecError::Input(format!(
                        "input '{}' dims {:?} != declared {:?}",
                        buf.name,
                        ft.prog_dims(),
                        buf.dims
                    )));
                }
                stores.push(BufferStore::from_fractal(ft).map_err(core_err)?);
            }
            _ => stores.push(BufferStore::new(&buf.dims, buf.leaf_shape.clone())),
        }
    }

    for (gi, group) in compiled.groups.iter().enumerate() {
        run_group(compiled, group, gi, &mut stores, threads.max(1))?;
    }

    let mut outputs = HashMap::new();
    for (bi, buf) in etdg.buffers.iter().enumerate() {
        if buf.kind == BufferKind::Output {
            outputs.insert(BufferId(bi), stores[bi].to_fractal().map_err(core_err)?);
        }
    }
    Ok(outputs)
}

/// One pending buffer write produced by a point task.
struct PointWrite {
    buffer: usize,
    idx: Vec<i64>,
    value: Tensor,
}

fn run_group(
    compiled: &CompiledProgram,
    group: &ScheduledGroup,
    group_idx: usize,
    stores: &mut [BufferStore],
    threads: usize,
) -> Result<(), ExecError> {
    let r = &group.reordering;
    let d = r.bounds.len();
    let (lo, hi) = r.wavefront_range();
    let mut arena = Vec::new();
    for step in lo..hi {
        let npoints = points_into(r, step, &mut arena);
        if npoints == 0 {
            continue;
        }
        let points: Vec<Vec<i64>> = (0..npoints)
            .map(|p| arena[p * d..p * d + d].to_vec())
            .collect();
        // Compute in parallel (reads only touch earlier steps or the
        // per-point overlay), then apply the writes serially.
        let chunk = points.len().div_ceil(threads);
        let mut results: Vec<Result<Vec<PointWrite>, ExecError>> = Vec::new();
        if threads == 1 || points.len() == 1 {
            results.push(run_points(compiled, group, stores, &points));
        } else {
            let chunks: Vec<&[Vec<i64>]> = points.chunks(chunk).collect();
            let shared: &[BufferStore] = stores;
            // A panicking worker or scope surfaces as a typed error with
            // its original payload, never an abort.
            let panic_err = |payload: &ft_pool::PanicPayload| ExecError::WorkerPanic {
                group: group_idx,
                step,
                message: ft_pool::panic_message(payload),
            };
            let outcome = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| scope.spawn(move |_| run_points(compiled, group, shared, c)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().map_err(|p| panic_err(&p)))
                    .collect::<Vec<_>>()
            })
            .map_err(|p| panic_err(&p))?;
            for joined in outcome {
                results.push(joined?);
            }
        }
        for batch in results {
            for w in batch? {
                stores[w.buffer].set(&w.idx, w.value).map_err(core_err)?;
            }
        }
    }
    Ok(())
}

/// Executes a batch of points (one worker's share of a wavefront step).
fn run_points(
    compiled: &CompiledProgram,
    group: &ScheduledGroup,
    stores: &[BufferStore],
    points: &[Vec<i64>],
) -> Result<Vec<PointWrite>, ExecError> {
    let etdg = &compiled.etdg;
    let mut writes = Vec::new();
    for j in points {
        let t = group
            .reordering
            .to_original(j)
            .map_err(|e| ExecError::Runtime(e.to_string()))?;
        // Per-point overlay: values produced by earlier members at this
        // point (fused cross-nest intermediates) are forwarded without
        // touching the stores. Keyed per buffer so lookups borrow the
        // index slice instead of cloning it.
        let mut overlay: HashMap<usize, HashMap<Vec<i64>, Tensor>> = HashMap::new();
        for &member in &group.members {
            let block = etdg.block(member);
            if !block.domain.contains(&t) {
                continue;
            }
            let mut leaves = Vec::with_capacity(block.reads.len());
            for read in &block.reads {
                match read {
                    RegionRead::Fill { value, leaf_shape } => {
                        leaves.push(Tensor::full(leaf_shape.dims(), *value));
                    }
                    RegionRead::Buffer { buffer, map } => {
                        let idx = map
                            .apply(&t)
                            .map_err(|e| ExecError::Runtime(e.to_string()))?;
                        let forwarded = overlay.get(&buffer.0).and_then(|m| m.get(idx.as_slice()));
                        if let Some(v) = forwarded {
                            leaves.push(v.clone());
                        } else {
                            leaves.push(
                                stores[buffer.0]
                                    .get(&idx)
                                    .map_err(|e| {
                                        ExecError::Runtime(format!(
                                            "block '{}' at t={t:?}: {e}",
                                            block.name
                                        ))
                                    })?
                                    .clone(),
                            );
                        }
                    }
                }
            }
            let results = block
                .udf
                .eval(&leaves)
                .map_err(|e| ExecError::Runtime(e.to_string()))?;
            for (w, value) in block.writes.iter().zip(results) {
                let idx = w
                    .map
                    .apply(&t)
                    .map_err(|e| ExecError::Runtime(e.to_string()))?;
                overlay
                    .entry(w.buffer.0)
                    .or_default()
                    .insert(idx.clone(), value.clone());
                writes.push(PointWrite {
                    buffer: w.buffer.0,
                    idx,
                    value,
                });
            }
        }
    }
    Ok(writes)
}
