//! The multi-threaded wavefront executor.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::interp::BufferStore;
use ft_core::program::BufferKind;
use ft_core::BufferId;
use ft_etdg::RegionRead;
use ft_passes::{CompiledProgram, ScheduledGroup};
use ft_tensor::Tensor;

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Missing or malformed input.
    Input(String),
    /// A runtime invariant failed (unwritten read, double write, ...).
    Runtime(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Input(m) => write!(f, "input error: {m}"),
            ExecError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

fn core_err(e: ft_core::program::CoreError) -> ExecError {
    ExecError::Runtime(e.to_string())
}

/// Executes a compiled program on the given inputs with `threads` worker
/// threads (1 = fully sequential but still wavefront-ordered), returning
/// every output buffer.
pub fn execute(
    compiled: &CompiledProgram,
    inputs: &HashMap<BufferId, FractalTensor>,
    threads: usize,
) -> Result<HashMap<BufferId, FractalTensor>, ExecError> {
    let etdg = &compiled.etdg;
    let mut stores: Vec<BufferStore> = Vec::with_capacity(etdg.buffers.len());
    for (bi, buf) in etdg.buffers.iter().enumerate() {
        match buf.kind {
            BufferKind::Input => {
                let ft = inputs
                    .get(&BufferId(bi))
                    .ok_or_else(|| ExecError::Input(format!("missing input '{}'", buf.name)))?;
                if ft.prog_dims() != buf.dims {
                    return Err(ExecError::Input(format!(
                        "input '{}' dims {:?} != declared {:?}",
                        buf.name,
                        ft.prog_dims(),
                        buf.dims
                    )));
                }
                stores.push(BufferStore::from_fractal(ft).map_err(core_err)?);
            }
            _ => stores.push(BufferStore::new(&buf.dims, buf.leaf_shape.clone())),
        }
    }

    let mut root = ft_probe::span("exec", "execute");
    if root.is_recording() {
        root.field("program", etdg.name.as_str());
        root.field("groups", compiled.groups.len());
        root.field("threads", threads.max(1));
    }
    for (gi, group) in compiled.groups.iter().enumerate() {
        run_group(compiled, group, gi, &mut stores, threads.max(1))?;
    }

    let mut outputs = HashMap::new();
    for (bi, buf) in etdg.buffers.iter().enumerate() {
        if buf.kind == BufferKind::Output {
            outputs.insert(BufferId(bi), stores[bi].to_fractal().map_err(core_err)?);
        }
    }
    Ok(outputs)
}

/// One pending buffer write produced by a point task.
struct PointWrite {
    buffer: usize,
    idx: Vec<i64>,
    value: Tensor,
}

/// One worker's output for a wavefront step: the pending writes plus the
/// number of buffer reads it issued (for traffic accounting).
struct PointBatch {
    writes: Vec<PointWrite>,
    reads: u64,
}

/// Per-worker timing captured only while tracing is enabled.
struct WorkerStat {
    worker: usize,
    ts_us: f64,
    dur_us: f64,
    points: usize,
}

/// Probe thread-track ids for executor workers start here so they never
/// collide with the per-thread tracks the collector assigns.
const WORKER_TID_BASE: u64 = 1000;

fn run_group(
    compiled: &CompiledProgram,
    group: &ScheduledGroup,
    group_idx: usize,
    stores: &mut [BufferStore],
    threads: usize,
) -> Result<(), ExecError> {
    let r = &group.reordering;
    let (lo, hi) = r.wavefront_range();
    let probe_on = ft_probe::enabled();
    let mut gspan = ft_probe::span("exec", "launch_group");
    if gspan.is_recording() {
        gspan.field("group", group_idx);
        gspan.field("name", compiled.etdg.block(group.members[0]).name.as_str());
        gspan.field("members", group.members.len());
        gspan.field("wavefront_steps", hi - lo);
        gspan.field("threads", threads);
        ft_probe::counter("exec.launch_groups", 1.0);
    }
    for step in lo..hi {
        // All transformed points of this wavefront step.
        let points = points_at_step(r, step);
        if points.is_empty() {
            continue;
        }
        let mut sspan = ft_probe::span("exec", "wavefront_step");
        // Compute in parallel (reads only touch earlier steps or the
        // per-point overlay), then apply the writes serially.
        let chunk = points.len().div_ceil(threads);
        let mut results: Vec<Result<PointBatch, ExecError>> = Vec::new();
        let mut worker_stats: Vec<WorkerStat> = Vec::new();
        if threads == 1 || points.len() == 1 {
            let t0 = probe_on.then(ft_probe::now_us);
            results.push(run_points(compiled, group, stores, &points));
            if let Some(t0) = t0 {
                worker_stats.push(WorkerStat {
                    worker: 0,
                    ts_us: t0,
                    dur_us: ft_probe::now_us() - t0,
                    points: points.len(),
                });
            }
        } else {
            let chunks: Vec<&[Vec<i64>]> = points.chunks(chunk).collect();
            let shared: &[BufferStore] = stores;
            let outcome = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .enumerate()
                    .map(|(w, c)| {
                        scope.spawn(move |_| {
                            let t0 = probe_on.then(ft_probe::now_us);
                            let res = run_points(compiled, group, shared, c);
                            let stat = t0.map(|t| WorkerStat {
                                worker: w,
                                ts_us: t,
                                dur_us: ft_probe::now_us() - t,
                                points: c.len(),
                            });
                            (res, stat)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("crossbeam scope");
            for (res, stat) in outcome {
                results.push(res);
                if let Some(s) = stat {
                    worker_stats.push(s);
                }
            }
        }
        let mut reads_total = 0u64;
        let mut writes_applied = 0u64;
        for batch in results {
            let batch = batch?;
            reads_total += batch.reads;
            for w in batch.writes {
                stores[w.buffer].set(&w.idx, w.value).map_err(core_err)?;
                writes_applied += 1;
            }
        }
        if sspan.is_recording() {
            // Busy = time inside run_points; idle = the tail each worker
            // spends waiting for the slowest one in this step's compute
            // window. The serial write-apply phase is charged to the step
            // span itself, not to worker idle time.
            let workers = worker_stats.len().max(1);
            let busy: f64 = worker_stats.iter().map(|s| s.dur_us).sum();
            let window_start = worker_stats
                .iter()
                .map(|s| s.ts_us)
                .fold(f64::INFINITY, f64::min);
            let window_end = worker_stats
                .iter()
                .map(|s| s.ts_us + s.dur_us)
                .fold(0.0, f64::max);
            let idle = (workers as f64 * (window_end - window_start) - busy).max(0.0);
            sspan.field("group", group_idx);
            sspan.field("step", step);
            sspan.field("points", points.len());
            sspan.field("workers", workers);
            sspan.field("busy_us", busy);
            sspan.field("idle_us", idle);
            sspan.field("reads", reads_total);
            sspan.field("writes", writes_applied);
            ft_probe::counter("exec.wavefront_steps", 1.0);
            ft_probe::counter("exec.points", points.len() as f64);
            ft_probe::counter("exec.worker_busy_us", busy);
            ft_probe::counter("exec.worker_idle_us", idle);
            ft_probe::counter("exec.buffer_reads", reads_total as f64);
            ft_probe::counter("exec.buffer_writes", writes_applied as f64);
            for s in &worker_stats {
                let tid = WORKER_TID_BASE + s.worker as u64;
                ft_probe::set_thread_label(ft_probe::WALL_PID, tid, format!("worker-{}", s.worker));
                ft_probe::complete_event(
                    "exec",
                    "worker",
                    ft_probe::WALL_PID,
                    tid,
                    s.ts_us,
                    s.dur_us,
                    vec![
                        ("group".to_string(), group_idx.into()),
                        ("step".to_string(), step.into()),
                        ("points".to_string(), s.points.into()),
                    ],
                );
            }
        }
    }
    Ok(())
}

/// Enumerates the transformed points with a fixed wavefront coordinate.
fn points_at_step(r: &ft_passes::Reordering, step: i64) -> Vec<Vec<i64>> {
    let d = r.bounds.len();
    let mut out = Vec::new();
    let mut current = vec![0i64; d];
    if r.sequential_dims == 0 {
        // Pure-parallel group: one "step" covering the whole domain.
        enumerate_from(r, 0, &mut current, &mut out);
        return out;
    }
    current[0] = step;
    enumerate_from(r, 1, &mut current, &mut out);
    out
}

fn enumerate_from(
    r: &ft_passes::Reordering,
    depth: usize,
    current: &mut Vec<i64>,
    out: &mut Vec<Vec<i64>>,
) {
    if depth == r.bounds.len() {
        out.push(current.clone());
        return;
    }
    let lb = &r.bounds[depth];
    let lo = lb.eval_lower(current);
    let hi = lb.eval_upper_exclusive(current);
    for v in lo..hi {
        current[depth] = v;
        enumerate_from(r, depth + 1, current, out);
    }
    current[depth] = 0;
}

/// Executes a batch of points (one worker's share of a wavefront step).
fn run_points(
    compiled: &CompiledProgram,
    group: &ScheduledGroup,
    stores: &[BufferStore],
    points: &[Vec<i64>],
) -> Result<PointBatch, ExecError> {
    let etdg = &compiled.etdg;
    let mut writes = Vec::new();
    let mut reads = 0u64;
    for j in points {
        let t = group
            .reordering
            .to_original(j)
            .map_err(|e| ExecError::Runtime(e.to_string()))?;
        // Per-point overlay: values produced by earlier members at this
        // point (fused cross-nest intermediates) are forwarded without
        // touching the stores.
        let mut overlay: HashMap<(usize, Vec<i64>), Tensor> = HashMap::new();
        for &member in &group.members {
            let block = etdg.block(member);
            if !block.domain.contains(&t) {
                continue;
            }
            let mut leaves = Vec::with_capacity(block.reads.len());
            for read in &block.reads {
                match read {
                    RegionRead::Fill { value, leaf_shape } => {
                        leaves.push(Tensor::full(leaf_shape.dims(), *value));
                    }
                    RegionRead::Buffer { buffer, map } => {
                        reads += 1;
                        let idx = map
                            .apply(&t)
                            .map_err(|e| ExecError::Runtime(e.to_string()))?;
                        if let Some(v) = overlay.get(&(buffer.0, idx.clone())) {
                            leaves.push(v.clone());
                        } else {
                            leaves.push(
                                stores[buffer.0]
                                    .get(&idx)
                                    .map_err(|e| {
                                        ExecError::Runtime(format!(
                                            "block '{}' at t={t:?}: {e}",
                                            block.name
                                        ))
                                    })?
                                    .clone(),
                            );
                        }
                    }
                }
            }
            let results = block
                .udf
                .eval(&leaves)
                .map_err(|e| ExecError::Runtime(e.to_string()))?;
            for (w, value) in block.writes.iter().zip(results) {
                let idx = w
                    .map
                    .apply(&t)
                    .map_err(|e| ExecError::Runtime(e.to_string()))?;
                overlay.insert((w.buffer.0, idx.clone()), value.clone());
                writes.push(PointWrite {
                    buffer: w.buffer.0,
                    idx,
                    value,
                });
            }
        }
    }
    Ok(PointBatch { writes, reads })
}

/// Executes a single group and reports how many points ran in each
/// wavefront step (used by tests and the parallelism examples).
pub fn wavefront_profile(compiled: &CompiledProgram, group_idx: usize) -> Vec<(i64, usize)> {
    let group = &compiled.groups[group_idx];
    let r = &group.reordering;
    let (lo, hi) = r.wavefront_range();
    (lo..hi)
        .map(|step| {
            let pts = points_at_step(r, step);
            // Only points that land in some member's domain count.
            let live = pts
                .iter()
                .filter(|j| {
                    r.to_original(j).is_ok_and(|t| {
                        group
                            .members
                            .iter()
                            .any(|&m| compiled.etdg.block(m).domain.contains(&t))
                    })
                })
                .count();
            (step, live)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    fn rnn_inputs(n: usize, d: usize, l: usize, h: usize) -> HashMap<BufferId, FractalTensor> {
        let xss = FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], 7), 2).unwrap();
        let ws =
            FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap();
        let mut m = HashMap::new();
        m.insert(BufferId(0), xss);
        m.insert(BufferId(1), ws);
        m
    }

    #[test]
    fn compiled_wavefront_matches_interpreter() {
        let (n, d, l, h) = (3usize, 4usize, 5usize, 8usize);
        let p = stacked_rnn_program(n, d, l, h);
        let inputs = rnn_inputs(n, d, l, h);
        let expected = run_program(&p, &inputs).unwrap();
        let compiled = compile(&p).unwrap();
        for threads in [1usize, 4] {
            let got = execute(&compiled, &inputs, threads).unwrap();
            assert_eq!(got.len(), expected.len());
            for (id, ft) in &expected {
                let g = &got[id];
                assert_eq!(g.prog_dims(), ft.prog_dims());
                assert_allclose(&g.to_flat().unwrap(), &ft.to_flat().unwrap(), 1e-5);
            }
        }
    }

    #[test]
    fn execution_is_deterministic_across_thread_counts() {
        let p = stacked_rnn_program(2, 3, 6, 4);
        let inputs = rnn_inputs(2, 3, 6, 4);
        let compiled = compile(&p).unwrap();
        let a = execute(&compiled, &inputs, 1).unwrap();
        let b = execute(&compiled, &inputs, 8).unwrap();
        for (id, ft) in &a {
            assert_eq!(ft, &b[id], "thread count changed the result");
        }
    }

    #[test]
    fn wavefront_width_peaks_in_the_middle() {
        // The diagonal wavefront over (depth, time) starts and ends with a
        // single cell and is widest in the middle — the parallelism Figure
        // 9 visualizes with same-colour cells.
        let (n, d, l) = (1usize, 4usize, 6usize);
        let p = stacked_rnn_program(n, d, l, 4);
        let compiled = compile(&p).unwrap();
        let profile = wavefront_profile(&compiled, 0);
        assert_eq!(profile.len(), d + l - 1);
        let widths: Vec<usize> = profile.iter().map(|&(_, w)| w).collect();
        assert_eq!(widths[0], 1);
        assert_eq!(*widths.last().unwrap(), 1);
        let max = *widths.iter().max().unwrap();
        assert_eq!(max, d.min(l));
        // Total cells = D * L.
        assert_eq!(widths.iter().sum::<usize>(), d * l);
    }

    #[test]
    fn missing_input_is_an_error() {
        let p = stacked_rnn_program(2, 2, 2, 4);
        let compiled = compile(&p).unwrap();
        let err = execute(&compiled, &HashMap::new(), 1);
        assert!(matches!(err, Err(ExecError::Input(_))));
    }
}
