//! The multi-threaded wavefront executor on a persistent worker pool.
//!
//! One [`ft_pool::WorkerPool`] is spawned per [`execute`] call and parked
//! between wavefront steps; each step publishes one job that every
//! participant drains through an atomic chunk cursor (dynamic load
//! balancing — wavefront widths vary wildly across steps, so static
//! chunking strands workers). Points are enumerated into a reusable flat
//! `i64` arena, and each launch group's access maps are partially
//! evaluated once into a [`GroupPlan`](crate::plan::GroupPlan) so the
//! per-point inner loop does strength-reduced flat index arithmetic with a
//! dense scratch-slot table for cross-member forwarding — no hashing, no
//! per-point allocation of index vectors.
//!
//! Buffer storage is one contiguous `f32` **arena** laid out at plan time
//! by [`ft_passes::plan_memory`]: every access resolves to a flat element
//! offset (an affine function of the wavefront point), extern inputs are
//! borrowed leaf-by-leaf as `Arc` handles (never deep-copied), and UDFs
//! evaluate over borrowed slices through `ft_tensor::slices` kernels.
//! Workers stage their writes in per-worker flat buffers; the publishing
//! thread applies them serially between steps, enforcing the
//! single-assignment property with a leaf-granular written bitmap. Arena
//! buffers are pooled on the [`Executor`], so a long-lived executor (the
//! serving runtime's) reaches a zero-allocation steady state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use ft_core::adt::FractalTensor;
use ft_core::expr::OpCode;
use ft_core::program::BufferKind;
use ft_core::BufferId;
use ft_passes::{CompiledProgram, Placement, Reordering};
use ft_pool::WorkerPool;
use ft_tensor::{slices, Tensor};
use parking_lot::{Mutex, RwLock};

use crate::plan::{
    affine_flat, matvec_flat, ArgSrc, GroupPlan, MemberPlan, Place, ReadPlan, StmtPlan,
};

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Missing or malformed input.
    Input(String),
    /// A runtime invariant failed (unwritten read, double write, ...).
    Runtime(String),
    /// A worker panicked during a wavefront step; the original panic
    /// payload is preserved in `message`.
    WorkerPanic {
        /// Launch group index.
        group: usize,
        /// Wavefront step at which the panic surfaced.
        step: i64,
        /// The panic payload (stringified).
        message: String,
    },
    /// A guard-mode check tripped (`FT_GUARD=1` / [`Executor::guard`]):
    /// an access-map evaluation left its buffer's range, or a step output
    /// contained a non-finite value.
    Guard {
        /// Launch group index.
        group: usize,
        /// Wavefront step of the offending point.
        step: i64,
        /// Block (member) name.
        block: String,
        /// What tripped, with the buffer and point spelled out.
        detail: String,
    },
    /// A wavefront launch stopped making heartbeat progress for the
    /// configured watchdog window ([`Executor::launch_timeout`]): the job
    /// is presumed wedged (e.g. a UDF in an infinite loop), its pool is
    /// poisoned and must be replaced. Unlike a panic, the wedged threads
    /// are abandoned, not joined — fallback cannot repair this error
    /// because re-running the same wedge inline would hang the caller.
    Stalled {
        /// Launch group index.
        group: usize,
        /// Wavefront step the watchdog gave up on.
        step: i64,
        /// Wall time from launch to the stall verdict.
        elapsed_ms: u64,
    },
    /// Scratch-slot forwarding invariant broken: a populated slot carried
    /// no value for the member reading it.
    Forwarding {
        /// Launch group index.
        group: usize,
        /// Block (member) name.
        block: String,
        /// Buffer the read targeted.
        buffer: String,
        /// Original-space wavefront point.
        point: Vec<i64>,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Input(m) => write!(f, "input error: {m}"),
            ExecError::Runtime(m) => write!(f, "runtime error: {m}"),
            ExecError::WorkerPanic {
                group,
                step,
                message,
            } => write!(
                f,
                "worker panic in group {group} at wavefront step {step}: {message}"
            ),
            ExecError::Guard {
                group,
                step,
                block,
                detail,
            } => write!(
                f,
                "guard trip in group {group} step {step}, block '{block}': {detail}"
            ),
            ExecError::Stalled {
                group,
                step,
                elapsed_ms,
            } => write!(
                f,
                "launch stalled in group {group} at wavefront step {step}: \
                 no worker heartbeat, gave up after {elapsed_ms} ms (pool poisoned)"
            ),
            ExecError::Forwarding {
                group,
                block,
                buffer,
                point,
            } => write!(
                f,
                "forwarding slot for buffer '{buffer}' empty in group {group}, \
                 block '{block}' at point {point:?}"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

impl ExecError {
    /// The `(group, step)` the error is attributed to, when known.
    pub fn location(&self) -> Option<(usize, i64)> {
        match self {
            ExecError::WorkerPanic { group, step, .. }
            | ExecError::Guard { group, step, .. }
            | ExecError::Stalled { group, step, .. } => Some((*group, *step)),
            _ => None,
        }
    }
}

pub(crate) fn core_err(e: ft_core::program::CoreError) -> ExecError {
    ExecError::Runtime(e.to_string())
}

/// A fault-injection plan for the executor — the chaos-testing hook of the
/// robustness layer. **Test/bench-only API**: an armed `FaultPlan`
/// deliberately breaks execution so the degradation machinery can be
/// exercised; never attach one on a production path.
///
/// All three fault classes leave [`execute_reference`](crate::execute_reference)
/// untouched, so a fallback after an injected fault reproduces the clean
/// output bit-for-bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Panic the first worker that picks up work at `(group, step)`.
    pub panic_at: Option<(usize, i64)>,
    /// Shift the first offset component of `(group, member, read)`'s
    /// access map by a delta: `(group, member, read, delta)`.
    pub corrupt_read: Option<(usize, usize, usize, i64)>,
    /// Overwrite the first UDF output with NaN at every point of
    /// `(group, step)`.
    pub poison_nan_at: Option<(usize, i64)>,
    /// Wedge the first worker that picks up work at `(group, step)` for
    /// the given number of milliseconds — a bounded stand-in for a UDF
    /// stuck in an infinite loop, used to exercise the stall watchdog:
    /// `(group, step, sleep_ms)`.
    pub stall_at: Option<(usize, i64, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects a worker panic at the given group/step.
    pub fn panic_at(mut self, group: usize, step: i64) -> Self {
        self.panic_at = Some((group, step));
        self
    }

    /// Corrupts one read's access-map offset by `delta`.
    pub fn corrupt_read(mut self, group: usize, member: usize, read: usize, delta: i64) -> Self {
        self.corrupt_read = Some((group, member, read, delta));
        self
    }

    /// Poisons the first UDF output with NaN at the given group/step.
    pub fn poison_nan_at(mut self, group: usize, step: i64) -> Self {
        self.poison_nan_at = Some((group, step));
        self
    }

    /// Wedges a worker for `sleep_ms` at the given group/step (stall
    /// watchdog exercise; see [`FaultPlan::stall_at`]).
    pub fn stall_at(mut self, group: usize, step: i64, sleep_ms: u64) -> Self {
        self.stall_at = Some((group, step, sleep_ms));
        self
    }
}

/// Why (and where) a run degraded to the reference executor.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// Launch group the failure was attributed to, when known.
    pub group: Option<usize>,
    /// Wavefront step of the failure, when known.
    pub step: Option<i64>,
    /// The error the pooled executor hit before falling back.
    pub error: ExecError,
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "degraded to reference executor: {}", self.error)
    }
}

/// The result of [`Executor::run_report`]: outputs plus an optional
/// degradation report when the pooled executor fell back.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Every output buffer.
    pub outputs: HashMap<BufferId, FractalTensor>,
    /// `Some` when the pooled path failed and the result was recomputed by
    /// the single-threaded reference executor.
    pub degraded: Option<Degradation>,
}

/// Target chunks per participant: small enough to amortize cursor traffic,
/// large enough that an unlucky tail chunk cannot dominate a step.
const CHUNKS_PER_WORKER: usize = 4;

/// Probe thread-track ids for executor workers start here so they never
/// collide with the per-thread tracks the collector assigns.
const WORKER_TID_BASE: u64 = 1000;

/// Arena buffers retained for reuse per executor (beyond this, extra
/// buffers are dropped rather than hoarded).
const ARENA_POOL_CAP: usize = 8;

/// Executes a compiled program on the given inputs with `threads` worker
/// threads (1 = fully sequential but still wavefront-ordered), returning
/// every output buffer.
pub fn execute(
    compiled: &CompiledProgram,
    inputs: &HashMap<BufferId, FractalTensor>,
    threads: usize,
) -> Result<HashMap<BufferId, FractalTensor>, ExecError> {
    Executor::new().threads(threads).run(compiled, inputs)
}

/// One run's backing store: the flat `f32` arena plus the leaf-granular
/// written bitmap that enforces single assignment. Pooled and reused
/// across runs — `resize` after the first run is a no-op on capacity.
#[derive(Default)]
struct ArenaBuf {
    data: Vec<f32>,
    written: Vec<bool>,
}

/// The executor's arena pool and its lifetime counters. Shared by all
/// clones of an [`Executor`] (the serving runtime clones its executor per
/// snapshot), so the stats are cumulative across every run. Counters are
/// mirrored into the always-on global metrics registry
/// ([`ft_obs::Registry::global`]) so exporters see arena behaviour
/// without `FT_TRACE`.
#[derive(Default)]
struct ArenaPool {
    bufs: Mutex<Vec<ArenaBuf>>,
    acquires: AtomicU64,
    reused: AtomicU64,
    grows: AtomicU64,
    leaf_borrows: AtomicU64,
    leaf_clones: AtomicU64,
}

impl ArenaPool {
    fn acquire(&self, arena_len: usize, slots_len: usize) -> ArenaBuf {
        let obs = exec_obs();
        self.acquires.fetch_add(1, Ordering::Relaxed);
        obs.arena_acquires.inc();
        ft_probe::counter("exec.arena_acquires", 1.0);
        let mut buf = self.bufs.lock().pop().unwrap_or_default();
        if buf.data.capacity() >= arena_len && buf.written.capacity() >= slots_len {
            self.reused.fetch_add(1, Ordering::Relaxed);
            obs.arena_reused.inc();
            ft_probe::counter("exec.arena_reused", 1.0);
        } else {
            self.grows.fetch_add(1, Ordering::Relaxed);
            obs.arena_grows.inc();
            ft_probe::counter("exec.arena_grows", 1.0);
        }
        // High-water mark of the arena in elements: a point-in-time gauge
        // ft-top renders next to grows.
        let hw = obs.arena_high_water.get();
        if (arena_len as i64) > hw {
            obs.arena_high_water.set(arena_len as i64);
        }
        buf.data.clear();
        buf.data.resize(arena_len, 0.0);
        buf.written.clear();
        buf.written.resize(slots_len, false);
        buf
    }

    fn release(&self, buf: ArenaBuf) {
        let mut bufs = self.bufs.lock();
        if bufs.len() < ARENA_POOL_CAP {
            bufs.push(buf);
        }
    }
}

/// Pre-registered handles into the global metrics registry for the
/// executor's always-on counters: registered once, then every update is a
/// relaxed atomic add. These stay live with tracing disabled — they are
/// what `ft-top` and the Prometheus exporter read under production load.
struct ExecObs {
    arena_acquires: ft_obs::Counter,
    arena_reused: ft_obs::Counter,
    arena_grows: ft_obs::Counter,
    arena_high_water: ft_obs::Gauge,
    leaf_borrows: ft_obs::Counter,
    launch_groups: ft_obs::Counter,
    wavefront_steps: ft_obs::Counter,
    points: ft_obs::Counter,
    worker_busy_us: ft_obs::Counter,
    worker_idle_us: ft_obs::Counter,
    workers: ft_obs::Gauge,
    fallbacks: ft_obs::Counter,
    worker_panics: ft_obs::Counter,
    stalls: ft_obs::Counter,
}

fn exec_obs() -> &'static ExecObs {
    static OBS: std::sync::OnceLock<ExecObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = ft_obs::Registry::global();
        ExecObs {
            arena_acquires: reg.counter("exec.arena_acquires"),
            arena_reused: reg.counter("exec.arena_reused"),
            arena_grows: reg.counter("exec.arena_grows"),
            arena_high_water: reg.gauge("exec.arena_high_water"),
            leaf_borrows: reg.counter("exec.leaf_borrows"),
            launch_groups: reg.counter("exec.launch_groups"),
            wavefront_steps: reg.counter("exec.wavefront_steps"),
            points: reg.counter("exec.points"),
            worker_busy_us: reg.counter("exec.worker_busy_us"),
            worker_idle_us: reg.counter("exec.worker_idle_us"),
            workers: reg.gauge("exec.workers"),
            fallbacks: reg.counter("exec.fallbacks"),
            worker_panics: reg.counter("exec.worker_panics"),
            stalls: reg.counter("exec.stalls"),
        }
    })
}

/// A snapshot of the executor's arena counters (cumulative across runs and
/// across clones sharing the pool).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Arena buffers handed out (one per run).
    pub acquires: u64,
    /// Acquires satisfied without growing a buffer's capacity.
    pub reused: u64,
    /// Acquires that had to grow (or freshly allocate) a buffer.
    pub grows: u64,
    /// Leaf reads served as borrowed slices (arena, extern, or forwarded).
    pub leaf_borrows: u64,
    /// Leaf reads that fell back to cloning a tensor. Always zero on the
    /// arena path — the counter exists so tests and the serving stats can
    /// assert it stays that way.
    pub leaf_clones: u64,
}

/// Builder-style executor configuration.
///
/// [`Executor::default`] picks the worker count from the `FT_THREADS`
/// environment variable, falling back to the machine's available
/// parallelism (see [`ft_pool::default_threads`]); guard mode defaults on
/// when `FT_GUARD=1`, and fallback when `FT_FALLBACK=1`. Both environment
/// flags are resolved **once, at construction** — `run` never touches the
/// environment, so a long-lived `Executor` (e.g. the serving runtime's)
/// pays no `std::env::var` lookups on the hot path and is immune to
/// concurrent env mutation from other threads.
#[derive(Clone)]
pub struct Executor {
    threads: Option<usize>,
    guard: bool,
    fallback: bool,
    fault: Option<Arc<FaultPlan>>,
    /// One-shot armed fault consumed by the next run (test/bench only);
    /// shared by clones so a serving runtime's handle can arm its
    /// scheduler's executor.
    armed: Arc<Mutex<Option<FaultPlan>>>,
    /// Stall watchdog window per wavefront launch (see
    /// [`launch_timeout`](Self::launch_timeout)).
    timeout: Option<std::time::Duration>,
    /// Shared persistent pool; `None` spawns a pool per `run`.
    pool: Option<Arc<WorkerPool>>,
    /// Arena buffers reused across runs; shared by clones.
    arena: Arc<ArenaPool>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor {
            threads: None,
            guard: env_flag("FT_GUARD"),
            fallback: env_flag("FT_FALLBACK"),
            fault: None,
            armed: Arc::new(Mutex::new(None)),
            timeout: None,
            pool: None,
            arena: Arc::new(ArenaPool::default()),
        }
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .field("guard", &self.guard)
            .field("fallback", &self.fallback)
            .field("fault", &self.fault)
            .field("timeout", &self.timeout)
            .field("pool", &self.pool.as_ref().map(|p| p.threads()))
            .finish()
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| v.trim() == "1")
        .unwrap_or(false)
}

impl Executor {
    /// An executor with the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Enables guard mode: bounds-check every access-map evaluation against
    /// its buffer's range and scan step outputs for NaN/Inf, turning silent
    /// corruption into typed [`ExecError::Guard`]s. Also enabled by
    /// `FT_GUARD=1`.
    pub fn guard(mut self, on: bool) -> Self {
        self.guard = on;
        self
    }

    /// Enables graceful degradation: when the pooled executor fails for
    /// any non-input reason (worker panic, guard trip, runtime error), the
    /// program is transparently re-run by the single-threaded reference
    /// executor and the result is returned together with a
    /// [`Degradation`] report instead of an `Err`. Also enabled by
    /// `FT_FALLBACK=1`.
    pub fn fallback(mut self, on: bool) -> Self {
        self.fallback = on;
        self
    }

    /// Attaches a fault-injection plan (test/bench-only; see [`FaultPlan`]).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(Arc::new(plan));
        self
    }

    /// Arms a **one-shot** fault plan consumed by the next `run` on this
    /// executor or any clone of it (test/bench-only). Unlike
    /// [`fault_plan`](Self::fault_plan), which fires on every run, an
    /// armed fault hits exactly one launch — the shape chaos scenarios
    /// need to corrupt ~1% of live traffic without rebuilding executors.
    pub fn arm_fault(&self, plan: FaultPlan) {
        *self.armed.lock() = Some(plan);
    }

    /// Bounds each wavefront launch's wall time: if no worker records
    /// heartbeat progress for `timeout`, the launch fails with a typed
    /// [`ExecError::Stalled`] and the pool is poisoned (replace it — see
    /// `ft_pool`'s supervised-pool docs). Full coverage requires an
    /// attached [`WorkerPool::supervised`] pool; on a caller-participates
    /// pool only the spawned workers' share is watched.
    pub fn launch_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// Runs on a caller-owned persistent [`WorkerPool`] instead of spawning
    /// one per `run`. The pool's effective participant count overrides
    /// [`threads`](Self::threads); the serving runtime uses this so every
    /// request shares one set of parked workers.
    pub fn pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Cumulative arena counters for this executor (and every clone
    /// sharing its pool): acquires/reuses/grows plus the borrow-vs-clone
    /// split for leaf reads.
    pub fn arena_stats(&self) -> ArenaStats {
        ArenaStats {
            acquires: self.arena.acquires.load(Ordering::Relaxed),
            reused: self.arena.reused.load(Ordering::Relaxed),
            grows: self.arena.grows.load(Ordering::Relaxed),
            leaf_borrows: self.arena.leaf_borrows.load(Ordering::Relaxed),
            leaf_clones: self.arena.leaf_clones.load(Ordering::Relaxed),
        }
    }

    fn effective_threads(&self) -> usize {
        match &self.pool {
            Some(p) => p.threads(),
            None => self.threads.unwrap_or_else(ft_pool::default_threads),
        }
    }

    /// Runs the compiled program, returning every output buffer. With
    /// [`fallback`](Self::fallback) enabled, a pooled-executor failure is
    /// repaired transparently; use [`run_report`](Self::run_report) to
    /// observe whether that happened.
    pub fn run(
        &self,
        compiled: &CompiledProgram,
        inputs: &HashMap<BufferId, FractalTensor>,
    ) -> Result<HashMap<BufferId, FractalTensor>, ExecError> {
        self.run_report(compiled, inputs).map(|o| o.outputs)
    }

    /// [`run`](Self::run) with a serving batch id attached: every span this
    /// launch emits (`launch_group`, `wavefront_step`, per-worker events)
    /// carries the id, so a fused batch's execution is attributable back to
    /// the requests riding in it.
    pub fn run_tagged(
        &self,
        compiled: &CompiledProgram,
        inputs: &HashMap<BufferId, FractalTensor>,
        batch: Option<u64>,
    ) -> Result<HashMap<BufferId, FractalTensor>, ExecError> {
        self.run_report_tagged(compiled, inputs, batch)
            .map(|o| o.outputs)
    }

    /// Runs a shape-polymorphic plan family at outer extent `extent`.
    ///
    /// This is the dispatch-time half of symbolic plans: the family's
    /// stride/size formulas are evaluated at `extent` (memoized per
    /// extent inside the family — the lifetime analysis and first-fit
    /// never re-run), the arena is sized from the evaluated plan, and the
    /// instance executes exactly like an exact-shape compile. A family
    /// that fails to instantiate reports [`ExecError::Runtime`] — the
    /// plan is at fault, not the inputs.
    pub fn run_poly(
        &self,
        family: &ft_passes::PolyPlan,
        extent: usize,
        inputs: &HashMap<BufferId, FractalTensor>,
        batch: Option<u64>,
    ) -> Result<HashMap<BufferId, FractalTensor>, ExecError> {
        let instance = family
            .instance(extent)
            .map_err(|e| ExecError::Runtime(format!("poly instantiation at L={extent}: {e}")))?;
        self.run_tagged(&instance, inputs, batch)
    }

    /// Runs the compiled program, returning outputs plus a degradation
    /// report when the pooled path failed and fallback repaired it.
    pub fn run_report(
        &self,
        compiled: &CompiledProgram,
        inputs: &HashMap<BufferId, FractalTensor>,
    ) -> Result<ExecOutcome, ExecError> {
        self.run_report_tagged(compiled, inputs, None)
    }

    /// [`run_report`](Self::run_report) with a serving batch id attached
    /// (see [`run_tagged`](Self::run_tagged)).
    pub fn run_report_tagged(
        &self,
        compiled: &CompiledProgram,
        inputs: &HashMap<BufferId, FractalTensor>,
        batch: Option<u64>,
    ) -> Result<ExecOutcome, ExecError> {
        match self.run_pooled(compiled, inputs, batch) {
            Ok(outputs) => Ok(ExecOutcome {
                outputs,
                degraded: None,
            }),
            // Missing/malformed inputs fail identically everywhere;
            // degrading cannot repair them.
            Err(e @ ExecError::Input(_)) => Err(e),
            // A stalled launch means the work itself is wedged: re-running
            // it single-threaded on the *calling* thread would recreate
            // the hang with nobody left to time it out.
            Err(e @ ExecError::Stalled { .. }) => Err(e),
            Err(e) => {
                if !self.fallback {
                    return Err(e);
                }
                exec_obs().fallbacks.inc();
                ft_probe::counter("exec.fallbacks", 1.0);
                let mut span = ft_probe::span("exec", "fallback");
                if span.is_recording() {
                    span.field("error", e.to_string());
                }
                let outputs = crate::reference::execute_reference(compiled, inputs, 1)?;
                let (group, step) = match e.location() {
                    Some((g, s)) => (Some(g), Some(s)),
                    None => (None, None),
                };
                Ok(ExecOutcome {
                    outputs,
                    degraded: Some(Degradation {
                        group,
                        step,
                        error: e,
                    }),
                })
            }
        }
    }

    /// The pooled wavefront execution (no fallback handling).
    fn run_pooled(
        &self,
        compiled: &CompiledProgram,
        inputs: &HashMap<BufferId, FractalTensor>,
        batch: Option<u64>,
    ) -> Result<HashMap<BufferId, FractalTensor>, ExecError> {
        let etdg = &compiled.etdg;
        let memory = &compiled.memory;
        // Extern inputs are borrowed leaf-by-leaf (`Arc` handles into the
        // caller's storage) — never deep-copied into a fresh store.
        let mut externs: Vec<Option<ExternBuf>> = Vec::with_capacity(etdg.buffers.len());
        for (bi, buf) in etdg.buffers.iter().enumerate() {
            if buf.kind != BufferKind::Input {
                externs.push(None);
                continue;
            }
            let ft = inputs
                .get(&BufferId(bi))
                .ok_or_else(|| ExecError::Input(format!("missing input '{}'", buf.name)))?;
            if ft.prog_dims() != buf.dims {
                return Err(ExecError::Input(format!(
                    "input '{}' dims {:?} != declared {:?}",
                    buf.name,
                    ft.prog_dims(),
                    buf.dims
                )));
            }
            externs.push(Some(extern_leaves(ft, buf)?));
        }

        // The pool and the job closure live for the whole execute() call;
        // per-step state flows through `shared` behind cheap locks that
        // are only ever contended in the direction step-publish -> drain.
        // The pool may degrade to fewer participants than requested, so
        // size everything by its effective count. A caller-attached pool
        // is reused as-is (its workers stay parked between runs).
        let pool: Arc<WorkerPool> = match &self.pool {
            Some(p) => Arc::clone(p),
            None => Arc::new(WorkerPool::new(self.effective_threads())),
        };
        let threads = pool.threads();
        // A one-shot armed fault (chaos scenarios) trumps the per-run
        // plan; taking it here consumes it for every clone.
        let fault = match self.armed.lock().take() {
            Some(p) => Some(Arc::new(p)),
            None => self.fault.clone(),
        };

        exec_obs().workers.set(threads as i64);
        let mut root = ft_probe::span("exec", "execute");
        if root.is_recording() {
            root.field("program", etdg.name.as_str());
            root.field("groups", compiled.groups.len());
            root.field("threads", threads);
            root.field("arena_len", memory.arena_len);
            if let Some(b) = batch {
                root.field("batch", b);
            }
        }

        let shared = Arc::new(ExecShared {
            arena: RwLock::new(self.arena.acquire(memory.arena_len, memory.slots_len)),
            externs,
            step: RwLock::new(StepCtx::default()),
            cursor: AtomicUsize::new(0),
            outs: (0..threads)
                .map(|_| Mutex::new(WorkerOut::default()))
                .collect(),
            borrows: AtomicU64::new(0),
            batch,
            guard: self.guard,
            fault,
            pool: Arc::clone(&pool),
        });
        let job: ft_pool::Job = {
            let shared = Arc::clone(&shared);
            Arc::new(move |worker| worker_body(&shared, worker))
        };

        let result = (|| {
            for (gi, group) in compiled.groups.iter().enumerate() {
                run_group(compiled, group, gi, &pool, &shared, &job, self.timeout)?;
            }
            let arena = shared.arena.read();
            let mut outputs = HashMap::new();
            for (bi, buf) in etdg.buffers.iter().enumerate() {
                if buf.kind != BufferKind::Output {
                    continue;
                }
                let layout = &memory.buffers[bi];
                let Placement::Arena { offset, slot_off } = layout.placement else {
                    return Err(ExecError::Runtime(format!(
                        "output buffer '{}' has no arena placement",
                        buf.name
                    )));
                };
                if let Some(i) = (0..layout.leaves).find(|&i| !arena.written[slot_off + i]) {
                    return Err(ExecError::Runtime(format!(
                        "interpreter error: read of unwritten element (leaf {i} of output '{}')",
                        buf.name
                    )));
                }
                let mut dims = layout.dims.clone();
                dims.extend_from_slice(&layout.leaf_dims);
                let flat =
                    Tensor::from_vec(arena.data[offset..offset + layout.len].to_vec(), &dims)
                        .map_err(|e| ExecError::Runtime(e.to_string()))?;
                let ft = FractalTensor::from_flat(&flat, layout.dims.len()).map_err(core_err)?;
                outputs.insert(BufferId(bi), ft);
            }
            Ok(outputs)
        })();

        let borrows = shared.borrows.load(Ordering::Relaxed);
        self.arena
            .leaf_borrows
            .fetch_add(borrows, Ordering::Relaxed);
        exec_obs().leaf_borrows.add(borrows);
        drop(job);
        // Reclaim the arena buffer for the pool on success *and* failure.
        let buf = match Arc::try_unwrap(shared) {
            Ok(sh) => sh.arena.into_inner(),
            Err(sh) => std::mem::take(&mut *sh.arena.write()),
        };
        self.arena.release(buf);
        result
    }
}

/// One extern input's leaves as shared contiguous handles, in flat
/// (row-major) leaf order.
struct ExternBuf {
    leaves: Vec<(Arc<Vec<f32>>, usize)>,
    leaf_len: usize,
}

/// Borrows every leaf of an extern input, validating its shape against the
/// declaration (the interpreter rejects mismatches up front; so must we,
/// since the flat kernels would otherwise read out of step).
fn extern_leaves(ft: &FractalTensor, buf: &ft_etdg::BufferNode) -> Result<ExternBuf, ExecError> {
    let dims = &buf.dims;
    let leaf_dims = buf.leaf_shape.dims();
    let nleaves: usize = dims.iter().product();
    let mut leaves = Vec::with_capacity(nleaves);
    let mut idx = vec![0usize; dims.len()];
    for _ in 0..nleaves {
        let leaf = ft
            .leaf_at(&idx)
            .map_err(|e| ExecError::Input(e.to_string()))?;
        if leaf.dims() != leaf_dims {
            return Err(ExecError::Input(format!(
                "input '{}' leaf shape mismatch",
                buf.name
            )));
        }
        leaves.push(leaf.shared_contiguous());
        for k in (0..dims.len()).rev() {
            idx[k] += 1;
            if idx[k] < dims[k] {
                break;
            }
            idx[k] = 0;
        }
    }
    Ok(ExternBuf {
        leaves,
        leaf_len: buf.leaf_shape.numel(),
    })
}

/// Per-step inputs published to the pool.
#[derive(Default)]
struct StepCtx {
    plan: Option<Arc<GroupPlan>>,
    /// Flat point arena: `npoints` transformed points of `plan.dims` each.
    points: Vec<i64>,
    npoints: usize,
    /// Points per cursor chunk.
    chunk: usize,
    /// Launch group index (error attribution).
    group: usize,
    /// Wavefront step (error attribution, fault matching).
    step: i64,
}

/// State shared between the publishing thread and the pool participants.
struct ExecShared {
    /// The run's backing store. Workers hold the read lock during a step's
    /// compute phase; the publishing thread takes the write lock for the
    /// serial apply between steps (workers are parked then).
    arena: RwLock<ArenaBuf>,
    /// Extern input leaf handles, indexed by buffer (None = not an input).
    externs: Vec<Option<ExternBuf>>,
    step: RwLock<StepCtx>,
    cursor: AtomicUsize,
    outs: Vec<Mutex<WorkerOut>>,
    /// Leaf reads served this run (flushed into the pool stats at the end).
    borrows: AtomicU64,
    /// Serving batch id this launch runs under ([`Executor::run_tagged`]).
    batch: Option<u64>,
    /// Guard mode: bounds-check accesses, NaN/Inf-scan outputs.
    guard: bool,
    /// Armed fault plan (test/bench only).
    fault: Option<Arc<FaultPlan>>,
    /// The pool this run executes on: workers heartbeat through it once
    /// per drained chunk so the stall watchdog can see progress.
    pool: Arc<WorkerPool>,
}

/// Per-point evaluation context threaded through the worker body.
struct PointEnv<'a> {
    group: usize,
    step: i64,
    guard: bool,
    fault: Option<&'a FaultPlan>,
}

/// One pending write: a window of the worker's staged data plus its flat
/// destination in the arena and its bit in the written bitmap.
struct WriteRec {
    buffer: u32,
    arena_off: usize,
    bit: usize,
    len: u32,
}

/// One participant's output for a wavefront step.
#[derive(Default)]
struct WorkerOut {
    /// Flat arena of staged write values, windows in `writes` order.
    writes_data: Vec<f32>,
    writes: Vec<WriteRec>,
    /// Buffer reads issued (for traffic accounting).
    reads: u64,
    /// Points processed.
    points: usize,
    err: Option<ExecError>,
    /// `(start_us, dur_us)`, captured only while tracing is enabled.
    stat: Option<(f64, f64)>,
}

/// Where one UDF input leaf comes from at the current point, resolved to
/// plain offsets so no borrows are held across the resolve loop.
#[derive(Clone, Copy)]
enum ReadSrc {
    /// Window of the shared arena.
    Arena { off: usize, len: usize },
    /// An extern input leaf.
    Extern { buffer: usize, leaf: usize },
    /// A plan-time fill constant of the member.
    Fill(usize),
    /// A same-point forwarded value in the slot-data scratch.
    Slot { off: usize, len: usize },
}

/// Reusable per-worker scratch sized by the group plan.
struct Scratch {
    /// Original-space point `t = T⁻¹·j`.
    t: Vec<i64>,
    /// One access index (plan's `max_rows`).
    idx: Vec<i64>,
    /// Flat per-slot forwarded values (windows at `plan.slot_data_offsets`).
    slot_data: Vec<f32>,
    /// Flat leaf index each populated slot was written at.
    slot_flat: Vec<i64>,
    slot_set: Vec<bool>,
    /// UDF statement scratch (windows laid out by the plan).
    tmps: Vec<f32>,
    /// Resolved sources for the current member's reads.
    read_src: Vec<ReadSrc>,
}

impl Scratch {
    fn new(plan: &GroupPlan) -> Self {
        Scratch {
            t: vec![0; plan.dims],
            idx: vec![0; plan.max_rows],
            slot_data: vec![0.0; plan.slot_data_len],
            slot_flat: vec![0; plan.slots()],
            slot_set: vec![false; plan.slots()],
            tmps: vec![0.0; plan.max_tmps_len],
            read_src: Vec::new(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_group(
    compiled: &CompiledProgram,
    group: &ft_passes::ScheduledGroup,
    group_idx: usize,
    pool: &WorkerPool,
    shared: &ExecShared,
    job: &ft_pool::Job,
    timeout: Option<std::time::Duration>,
) -> Result<(), ExecError> {
    let r = &group.reordering;
    let threads = pool.threads();
    let (lo, hi) = r.wavefront_range();
    let mut plan = GroupPlan::build(compiled, group)?;
    if let Some(fault) = shared.fault.as_deref() {
        if let Some((g, member, read, delta)) = fault.corrupt_read {
            if g == group_idx {
                plan.corrupt_read_offset(member, read, delta);
            }
        }
    }
    let plan = Arc::new(plan);
    exec_obs().launch_groups.inc();
    let mut gspan = ft_probe::span("exec", "launch_group");
    if gspan.is_recording() {
        gspan.field("group", group_idx);
        gspan.field("name", compiled.etdg.block(group.members[0]).name.as_str());
        gspan.field("members", group.members.len());
        gspan.field("wavefront_steps", hi - lo);
        gspan.field("threads", threads);
        gspan.field("scratch_slots", plan.slots());
        if let Some(b) = shared.batch {
            gspan.field("batch", b);
        }
        ft_probe::counter("exec.launch_groups", 1.0);
    }
    for step in lo..hi {
        // Publish the step: refill the point arena (no job is in flight,
        // so the write locks are uncontended).
        let (npoints, nchunks) = {
            let mut ctx = shared.step.write();
            ctx.plan = Some(Arc::clone(&plan));
            let mut arena = std::mem::take(&mut ctx.points);
            let npoints = points_into(r, step, &mut arena);
            ctx.points = arena;
            ctx.npoints = npoints;
            ctx.chunk = npoints.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
            ctx.group = group_idx;
            ctx.step = step;
            (npoints, npoints.div_ceil(ctx.chunk.max(1)))
        };
        if npoints == 0 {
            continue;
        }
        let mut sspan = ft_probe::span("exec", "wavefront_step");
        shared.cursor.store(0, Ordering::SeqCst);
        // Compute in parallel (reads only touch earlier steps or the
        // per-point scratch slots), then apply the writes serially. A
        // panicking participant surfaces as a typed error rather than an
        // abort: the pool preserves the payload, and the inline path is
        // wrapped the same way.
        // Single-chunk steps skip the pool wake-up and run inline — but
        // only on caller-participates pools: a supervised pool keeps the
        // publishing thread out of job code so the watchdog can abandon a
        // wedged step.
        let inline = (threads == 1 || nchunks == 1) && !pool.is_supervised();
        let failed = if inline {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker_body(shared, 0)))
                .err()
                .map(ft_pool::RunError::Panic)
        } else {
            pool.try_run_for(Arc::clone(job), timeout).err()
        };
        if let Some(err) = failed {
            return Err(match err {
                ft_pool::RunError::Panic(payload) => {
                    exec_obs().worker_panics.inc();
                    ft_probe::counter("exec.worker_panics", 1.0);
                    ExecError::WorkerPanic {
                        group: group_idx,
                        step,
                        message: ft_pool::panic_message(&payload),
                    }
                }
                ft_pool::RunError::Stalled { elapsed_ms } => {
                    exec_obs().stalls.inc();
                    ft_probe::counter("exec.stalls", 1.0);
                    ExecError::Stalled {
                        group: group_idx,
                        step,
                        elapsed_ms,
                    }
                }
                ft_pool::RunError::Poisoned => ExecError::Runtime(
                    "worker pool poisoned by an earlier stalled launch; replace the pool"
                        .to_string(),
                ),
            });
        }
        let mut reads_total = 0u64;
        let mut writes_applied = 0u64;
        let mut worker_stats: Vec<(usize, f64, f64, usize)> = Vec::new();
        {
            let mut arena = shared.arena.write();
            let arena = &mut *arena;
            for w in 0..threads {
                let out = std::mem::take(&mut *shared.outs[w].lock());
                if let Some(e) = out.err {
                    return Err(e);
                }
                reads_total += out.reads;
                if let Some((ts, dur)) = out.stat {
                    worker_stats.push((w, ts, dur, out.points));
                }
                let mut off = 0usize;
                for rec in out.writes {
                    let len = rec.len as usize;
                    let src = &out.writes_data[off..off + len];
                    off += len;
                    if arena.written[rec.bit] {
                        return Err(ExecError::Runtime(format!(
                            "interpreter error: single-assignment violation in buffer '{}'",
                            plan.buffer_names[rec.buffer as usize]
                        )));
                    }
                    arena.written[rec.bit] = true;
                    arena.data[rec.arena_off..rec.arena_off + len].copy_from_slice(src);
                    writes_applied += 1;
                }
            }
        }
        shared.borrows.fetch_add(reads_total, Ordering::Relaxed);
        // Busy = time inside the worker body; idle = the tail each worker
        // spends waiting for the slowest one in this step's compute
        // window. The serial write-apply phase is charged to the step
        // span itself, not to worker idle time. Worker timings are always
        // captured (two clock reads per worker per *step*, far off the
        // per-point path), so busy/idle feeds the always-on registry even
        // with tracing disabled.
        let workers = worker_stats.len().max(1);
        let busy: f64 = worker_stats.iter().map(|s| s.2).sum();
        let window_start = worker_stats
            .iter()
            .map(|s| s.1)
            .fold(f64::INFINITY, f64::min);
        let window_end = worker_stats.iter().map(|s| s.1 + s.2).fold(0.0, f64::max);
        let idle = (workers as f64 * (window_end - window_start) - busy).max(0.0);
        let obs = exec_obs();
        obs.wavefront_steps.inc();
        obs.points.add(npoints as u64);
        obs.worker_busy_us.add(busy as u64);
        obs.worker_idle_us.add(idle as u64);
        if sspan.is_recording() {
            sspan.field("group", group_idx);
            sspan.field("step", step);
            sspan.field("points", npoints);
            sspan.field("workers", workers);
            sspan.field("busy_us", busy);
            sspan.field("idle_us", idle);
            sspan.field("reads", reads_total);
            sspan.field("writes", writes_applied);
            if let Some(b) = shared.batch {
                sspan.field("batch", b);
            }
            ft_probe::counter("exec.wavefront_steps", 1.0);
            ft_probe::counter("exec.points", npoints as f64);
            ft_probe::counter("exec.worker_busy_us", busy);
            ft_probe::counter("exec.worker_idle_us", idle);
            ft_probe::counter("exec.buffer_reads", reads_total as f64);
            ft_probe::counter("exec.buffer_writes", writes_applied as f64);
            for &(w, ts, dur, points) in &worker_stats {
                let tid = WORKER_TID_BASE + w as u64;
                ft_probe::set_thread_label(ft_probe::WALL_PID, tid, format!("worker-{w}"));
                let mut fields = vec![
                    ("group".to_string(), group_idx.into()),
                    ("step".to_string(), step.into()),
                    ("points".to_string(), points.into()),
                ];
                if let Some(b) = shared.batch {
                    fields.push(("batch".to_string(), b.into()));
                }
                ft_probe::complete_event(
                    "exec",
                    "worker",
                    ft_probe::WALL_PID,
                    tid,
                    ts,
                    dur,
                    fields,
                );
            }
        }
    }
    Ok(())
}

/// One participant's share of a wavefront step: drain chunks off the
/// shared cursor until the arena is exhausted.
fn worker_body(shared: &ExecShared, worker: usize) {
    let ctx = shared.step.read();
    let Some(plan) = ctx.plan.as_deref() else {
        return;
    };
    let env = PointEnv {
        group: ctx.group,
        step: ctx.step,
        guard: shared.guard,
        fault: shared.fault.as_deref(),
    };
    let arena = shared.arena.read();
    // Always timed (not gated on probe_on): busy/idle attribution feeds
    // the always-on metrics registry, two clock reads per step per worker.
    let t0 = Some(ft_probe::now_us());
    let mut out = WorkerOut::default();
    let mut scratch = Scratch::new(plan);
    let d = plan.dims;
    'chunks: loop {
        let c = shared.cursor.fetch_add(1, Ordering::SeqCst);
        let start = c.saturating_mul(ctx.chunk);
        if start >= ctx.npoints {
            break;
        }
        // One heartbeat per claimed chunk: the stall watchdog
        // distinguishes slow-but-advancing steps from wedged ones by
        // exactly this signal.
        shared.pool.beat(worker);
        // Injected worker panic: whichever participant claims the first
        // chunk of the targeted step dies mid-drain, exactly like a UDF
        // or allocator blowing up on real work.
        if c == 0 {
            if let Some(fault) = env.fault {
                if fault.panic_at == Some((env.group, env.step)) {
                    panic!(
                        "injected fault: worker panic at group {} step {}",
                        env.group, env.step
                    );
                }
                // Injected wedge: sleep without heartbeating, as if the
                // UDF spun forever (bounded so tests don't leak threads).
                if let Some((g, s, ms)) = fault.stall_at {
                    if (g, s) == (env.group, env.step) {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            }
        }
        let end = (start + ctx.chunk).min(ctx.npoints);
        for p in start..end {
            let j = &ctx.points[p * d..p * d + d];
            out.points += 1;
            if let Err(e) = run_point(
                plan,
                &arena.data,
                &arena.written,
                &shared.externs,
                j,
                &mut scratch,
                &mut out,
                &env,
            ) {
                out.err = Some(e);
                break 'chunks;
            }
        }
    }
    if let Some(ts) = t0 {
        out.stat = Some((ts, ft_probe::now_us() - ts));
    }
    *shared.outs[worker].lock() = out;
}

/// Executes every group member at one transformed point.
#[allow(clippy::too_many_arguments)]
fn run_point(
    plan: &GroupPlan,
    arena_data: &[f32],
    written: &[bool],
    externs: &[Option<ExternBuf>],
    j: &[i64],
    s: &mut Scratch,
    out: &mut WorkerOut,
    env: &PointEnv<'_>,
) -> Result<(), ExecError> {
    matvec_flat(&plan.t_inv, plan.dims, plan.dims, j, &mut s.t);
    s.slot_set.fill(false);
    for member in &plan.members {
        if !member.domain.contains(&s.t) {
            continue;
        }
        eval_member(plan, member, arena_data, written, externs, j, s, out, env)?;
    }
    Ok(())
}

/// Resolves a UDF argument source to a borrowed slice. `tmps` is the
/// readable prefix of the statement scratch (all earlier windows) during
/// statement evaluation, or the whole scratch when staging outputs.
fn arg_slice<'a>(
    src: &ArgSrc,
    reads: &[ReadSrc],
    tmps: &'a [f32],
    fills: &'a [Vec<f32>],
    arena_data: &'a [f32],
    externs: &'a [Option<ExternBuf>],
    slot_data: &'a [f32],
) -> &'a [f32] {
    match src {
        ArgSrc::Tmp { off, len } => &tmps[*off..*off + *len],
        ArgSrc::In(k) => match &reads[*k] {
            ReadSrc::Fill(f) => &fills[*f],
            ReadSrc::Arena { off, len } => &arena_data[*off..*off + *len],
            ReadSrc::Slot { off, len } => &slot_data[*off..*off + *len],
            ReadSrc::Extern { buffer, leaf } => match &externs[*buffer] {
                Some(e) => {
                    let (data, off) = &e.leaves[*leaf];
                    &data[*off..*off + e.leaf_len]
                }
                // Unreachable: resolve_read verified presence.
                None => &[],
            },
        },
    }
}

/// Upper bound on fused-epilogue operands per statement. Mirrors the
/// fusion pass's `MAX_EPI_OPS` cap (each epilogue op consumes at most one
/// extra operand), so the per-point hot path can gather operand slices
/// into a fixed array instead of heap-allocating a `Vec` per statement.
const MAX_EPI_EXTRAS: usize = 8;

/// Resolves the epilogue operand slices into `buf` and returns the
/// populated prefix. Plans never exceed the cap (the fusion pass enforces
/// it); a malformed plan panics on the slice bound like every other
/// executor-side shape violation.
fn gather_extras<'a, 'b>(
    args: &[ArgSrc],
    buf: &'b mut [&'a [f32]; MAX_EPI_EXTRAS],
    get: &impl Fn(&ArgSrc) -> &'a [f32],
) -> &'b [&'a [f32]] {
    for (slot, a) in buf.iter_mut().zip(args) {
        *slot = get(a);
    }
    &buf[..args.len()]
}

/// One UDF statement over borrowed slices, dispatching to the bitwise
/// `ft_tensor::slices` kernels. Shapes were validated at plan time.
fn eval_stmt<'a>(st: &StmtPlan, get: impl Fn(&ArgSrc) -> &'a [f32], out: &mut [f32]) {
    let d0 = &st.arg_dims[0];
    match &st.op {
        OpCode::MatMul => {
            let (m, k) = (d0[0], d0[1]);
            let n = st.arg_dims[1][1];
            slices::matmul(get(&st.args[0]), get(&st.args[1]), m, k, n, out);
        }
        OpCode::MatMulT => {
            let (m, k) = (d0[0], d0[1]);
            let n = st.arg_dims[1][0];
            slices::matmul_transb(get(&st.args[0]), get(&st.args[1]), m, k, n, out);
        }
        OpCode::Add => slices::add_into(get(&st.args[0]), get(&st.args[1]), out),
        OpCode::Sub => slices::sub_into(get(&st.args[0]), get(&st.args[1]), out),
        OpCode::Mul => slices::mul_into(get(&st.args[0]), get(&st.args[1]), out),
        OpCode::Div => slices::div_into(get(&st.args[0]), get(&st.args[1]), out),
        OpCode::Max => slices::max_into(get(&st.args[0]), get(&st.args[1]), out),
        OpCode::AddColBc => slices::col_broadcast(
            get(&st.args[0]),
            get(&st.args[1]),
            d0[0],
            d0[1],
            out,
            |x, y| x + y,
        ),
        OpCode::SubColBc => slices::col_broadcast(
            get(&st.args[0]),
            get(&st.args[1]),
            d0[0],
            d0[1],
            out,
            |x, y| x - y,
        ),
        OpCode::MulColBc => slices::col_broadcast(
            get(&st.args[0]),
            get(&st.args[1]),
            d0[0],
            d0[1],
            out,
            |x, y| x * y,
        ),
        OpCode::DivColBc => slices::col_broadcast(
            get(&st.args[0]),
            get(&st.args[1]),
            d0[0],
            d0[1],
            out,
            |x, y| x / y,
        ),
        OpCode::Scale(c) => slices::scale_into(get(&st.args[0]), *c, out),
        OpCode::AddScalar(c) => slices::add_scalar_into(get(&st.args[0]), *c, out),
        OpCode::Tanh => slices::tanh_into(get(&st.args[0]), out),
        OpCode::Sigmoid => slices::sigmoid_into(get(&st.args[0]), out),
        OpCode::Exp => slices::exp_into(get(&st.args[0]), out),
        OpCode::Neg => slices::neg_into(get(&st.args[0]), out),
        OpCode::Relu => slices::relu_into(get(&st.args[0]), out),
        OpCode::RowMax => slices::row_reduce(
            get(&st.args[0]),
            d0[0],
            d0[1],
            f32::NEG_INFINITY,
            out,
            f32::max,
        ),
        OpCode::RowSum => {
            slices::row_reduce(get(&st.args[0]), d0[0], d0[1], 0.0, out, |acc, v| acc + v)
        }
        OpCode::Softmax => slices::softmax_rows(get(&st.args[0]), d0[0], d0[1], out),
        OpCode::Concat(axis) => {
            let outer: usize = d0[..*axis].iter().product();
            let inner: usize = d0[*axis + 1..].iter().product();
            let total: usize = st.arg_dims.iter().map(|d| d[*axis] * inner).sum();
            let mut base = 0usize;
            for (src, d) in st.args.iter().zip(&st.arg_dims) {
                let a = get(src);
                let width = d[*axis] * inner;
                for o in 0..outer {
                    out[o * total + base..o * total + base + width]
                        .copy_from_slice(&a[o * width..(o + 1) * width]);
                }
                base += width;
            }
        }
        OpCode::Slice { axis, start, end } => {
            slices::slice_axis(get(&st.args[0]), d0, *axis, *start, *end, out)
        }
        OpCode::Transpose => slices::transpose(get(&st.args[0]), d0[0], d0[1], out),
        OpCode::Id => out.copy_from_slice(get(&st.args[0])),
        OpCode::Silu => slices::silu_into(get(&st.args[0]), out),
        OpCode::FusedMatMul { transb, epi } => {
            let (m, k) = (d0[0], d0[1]);
            let n = if *transb {
                st.arg_dims[1][0]
            } else {
                st.arg_dims[1][1]
            };
            // Fixed-size extras buffer: this is the per-point hot path, so
            // no heap allocation (the fusion pass caps epilogue length).
            let mut buf: [&[f32]; MAX_EPI_EXTRAS] = [&[]; MAX_EPI_EXTRAS];
            let extras = gather_extras(&st.args[2..], &mut buf, &get);
            if *transb {
                slices::matmul_transb_epi(
                    get(&st.args[0]),
                    get(&st.args[1]),
                    m,
                    k,
                    n,
                    out,
                    epi,
                    extras,
                );
            } else {
                slices::matmul_epi(
                    get(&st.args[0]),
                    get(&st.args[1]),
                    m,
                    k,
                    n,
                    out,
                    epi,
                    extras,
                );
            }
        }
        OpCode::EwChain(ops) => {
            let mut buf: [&[f32]; MAX_EPI_EXTRAS] = [&[]; MAX_EPI_EXTRAS];
            let extras = gather_extras(&st.args[1..], &mut buf, &get);
            slices::ew_chain(get(&st.args[0]), out, ops, extras);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_member(
    plan: &GroupPlan,
    member: &MemberPlan,
    arena_data: &[f32],
    written: &[bool],
    externs: &[Option<ExternBuf>],
    j: &[i64],
    s: &mut Scratch,
    out: &mut WorkerOut,
    env: &PointEnv<'_>,
) -> Result<(), ExecError> {
    s.read_src.clear();
    for read in &member.reads {
        let src = match read {
            ReadPlan::Fill { fill } => ReadSrc::Fill(*fill),
            ReadPlan::Buffer { access, candidates } => {
                out.reads += 1;
                affine_flat(
                    &access.mat,
                    &access.off,
                    access.rows,
                    plan.dims,
                    j,
                    &mut s.idx,
                );
                let flat = flat_leaf(&s.idx, access)
                    .ok_or_else(|| oob_error(plan, member, access, s, env, AccessDir::Read))?;
                let mut forwarded = None;
                for &(slot, same_map) in candidates {
                    if s.slot_set[slot] && (same_map || s.slot_flat[slot] == flat as i64) {
                        forwarded = Some(slot);
                        break;
                    }
                }
                match (forwarded, access.place) {
                    (Some(slot), _) => ReadSrc::Slot {
                        off: plan.slot_data_offsets[slot],
                        len: access.leaf_len,
                    },
                    (None, Place::Extern) => {
                        if externs[access.buffer].is_none() {
                            return Err(ExecError::Runtime(format!(
                                "block '{}' at t={:?}: extern buffer '{}' missing",
                                member.name, s.t, plan.buffer_names[access.buffer]
                            )));
                        }
                        ReadSrc::Extern {
                            buffer: access.buffer,
                            leaf: flat,
                        }
                    }
                    (None, Place::Arena { offset, slot_off }) => {
                        if !written[slot_off + flat] {
                            return Err(ExecError::Runtime(format!(
                                "block '{}' at t={:?}: interpreter error: \
                                 read of unwritten element {:?}",
                                member.name,
                                s.t,
                                &s.idx[..access.rows]
                            )));
                        }
                        ReadSrc::Arena {
                            off: offset + access.leaf_len * flat,
                            len: access.leaf_len,
                        }
                    }
                }
            }
        };
        s.read_src.push(src);
    }

    // Evaluate the UDF statements into the scratch windows. Earlier
    // windows are readable through the split's prefix; the current
    // statement's window is the only mutable borrow.
    for st in &member.udf.stmts {
        let (lo, hi) = s.tmps.split_at_mut(st.out_off);
        let lo: &[f32] = lo;
        let out_win = &mut hi[..st.out_len];
        let read_src = &s.read_src;
        let slot_data: &[f32] = &s.slot_data;
        let fills = &member.fills;
        eval_stmt(
            st,
            |src| arg_slice(src, read_src, lo, fills, arena_data, externs, slot_data),
            out_win,
        );
    }

    // Stage every UDF output into the worker's flat write buffer (the
    // staged windows double as the NaN-scan and poison targets, exactly
    // as the old per-tensor path treated the UDF results).
    let base = out.writes_data.len();
    for (src, len) in &member.udf.outputs {
        let v = arg_slice(
            src,
            &s.read_src,
            &s.tmps,
            &member.fills,
            arena_data,
            externs,
            &s.slot_data,
        );
        out.writes_data.extend_from_slice(&v[..*len]);
    }
    if let Some(fault) = env.fault {
        if fault.poison_nan_at == Some((env.group, env.step)) {
            if let Some((_, len)) = member.udf.outputs.first() {
                for v in &mut out.writes_data[base..base + len] {
                    *v = f32::NAN;
                }
            }
        }
    }
    if env.guard && out.writes_data[base..].iter().any(|x| !x.is_finite()) {
        return Err(ExecError::Guard {
            group: env.group,
            step: env.step,
            block: member.name.clone(),
            detail: format!("non-finite value in step output at point t={:?}", s.t),
        });
    }

    let mut woff = base;
    for w in &member.writes {
        let len = w.access.leaf_len;
        affine_flat(
            &w.access.mat,
            &w.access.off,
            w.access.rows,
            plan.dims,
            j,
            &mut s.idx,
        );
        let flat = flat_leaf(&s.idx, &w.access)
            .ok_or_else(|| oob_error(plan, member, &w.access, s, env, AccessDir::Write))?;
        let slot_start = plan.slot_data_offsets[w.slot];
        s.slot_data[slot_start..slot_start + len]
            .copy_from_slice(&out.writes_data[woff..woff + len]);
        s.slot_flat[w.slot] = flat as i64;
        s.slot_set[w.slot] = true;
        let Place::Arena { offset, slot_off } = w.access.place else {
            // Unreachable: GroupPlan::build rejects extern writes.
            return Err(ExecError::Runtime(format!(
                "block '{}' writes extern buffer '{}'",
                member.name, plan.buffer_names[w.access.buffer]
            )));
        };
        out.writes.push(WriteRec {
            buffer: w.access.buffer as u32,
            arena_off: offset + len * flat,
            bit: slot_off + flat,
            len: len as u32,
        });
        woff += len;
    }
    Ok(())
}

/// Which way an access points (error-message selection only).
enum AccessDir {
    Read,
    Write,
}

/// The always-on range check fused with the flat-leaf-index computation:
/// `None` when any component leaves its extent (the error path; the
/// success path is branch-only and allocation-free).
#[inline]
fn flat_leaf(idx: &[i64], access: &crate::plan::Access) -> Option<usize> {
    let mut flat = 0i64;
    for (r, &v) in idx.iter().enumerate().take(access.rows) {
        if v < 0 || v >= access.extents[r] {
            return None;
        }
        flat += access.leaf_strides[r] * v;
    }
    Some(flat as usize)
}

/// Builds the out-of-range error for a failed [`flat_leaf`]: a typed guard
/// trip in guard mode, the interpreter-shaped runtime error otherwise.
fn oob_error(
    plan: &GroupPlan,
    member: &MemberPlan,
    access: &crate::plan::Access,
    s: &Scratch,
    env: &PointEnv<'_>,
    dir: AccessDir,
) -> ExecError {
    let idx = &s.idx[..access.rows];
    if env.guard {
        let what = match dir {
            AccessDir::Read => "read of",
            AccessDir::Write => "write to",
        };
        ExecError::Guard {
            group: env.group,
            step: env.step,
            block: member.name.clone(),
            detail: format!(
                "{what} buffer '{}' out of range at index {idx:?} (point t={:?})",
                plan.buffer_names[access.buffer], s.t
            ),
        }
    } else {
        ExecError::Runtime(format!(
            "block '{}' at t={:?}: interpreter error: index {idx:?} out of extents {:?}",
            member.name, s.t, access.extents
        ))
    }
}

/// Enumerates the transformed points with a fixed wavefront coordinate
/// into the flat arena `out` (stride = the reordering's dimensionality),
/// returning the point count. Shared by the executor, the reference
/// executor, and [`wavefront_profile`] so none of them allocate
/// per-point `Vec`s.
pub(crate) fn points_into(r: &Reordering, step: i64, out: &mut Vec<i64>) -> usize {
    out.clear();
    let d = r.bounds.len();
    let mut current = vec![0i64; d];
    let mut count = 0usize;
    if r.sequential_dims == 0 {
        // Pure-parallel group: one "step" covering the whole domain.
        enumerate_from(r, 0, &mut current, out, &mut count);
    } else {
        current[0] = step;
        enumerate_from(r, 1, &mut current, out, &mut count);
    }
    count
}

fn enumerate_from(
    r: &Reordering,
    depth: usize,
    current: &mut Vec<i64>,
    out: &mut Vec<i64>,
    count: &mut usize,
) {
    if depth == r.bounds.len() {
        out.extend_from_slice(current);
        *count += 1;
        return;
    }
    let lb = &r.bounds[depth];
    let lo = lb.eval_lower(current);
    let hi = lb.eval_upper_exclusive(current);
    for v in lo..hi {
        current[depth] = v;
        enumerate_from(r, depth + 1, current, out, count);
    }
    current[depth] = 0;
}

/// Executes a single group and reports how many points ran in each
/// wavefront step (used by tests and the parallelism examples). Reuses
/// one point arena and one back-transform buffer across all steps.
pub fn wavefront_profile(compiled: &CompiledProgram, group_idx: usize) -> Vec<(i64, usize)> {
    let group = &compiled.groups[group_idx];
    let r = &group.reordering;
    let d = r.bounds.len();
    let mut t_inv = Vec::with_capacity(d * d);
    for i in 0..d {
        t_inv.extend_from_slice(r.t_inv.row(i));
    }
    let (lo, hi) = r.wavefront_range();
    let mut arena = Vec::new();
    let mut t = vec![0i64; d];
    (lo..hi)
        .map(|step| {
            let npoints = points_into(r, step, &mut arena);
            // Only points that land in some member's domain count.
            let live = (0..npoints)
                .filter(|&p| {
                    matvec_flat(&t_inv, d, d, &arena[p * d..p * d + d], &mut t);
                    group
                        .members
                        .iter()
                        .any(|&m| compiled.etdg.block(m).domain.contains(&t))
                })
                .count();
            (step, live)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::execute_reference;
    use ft_core::builders::stacked_rnn_program;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    fn rnn_inputs(n: usize, d: usize, l: usize, h: usize) -> HashMap<BufferId, FractalTensor> {
        let xss = FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], 7), 2).unwrap();
        let ws =
            FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap();
        let mut m = HashMap::new();
        m.insert(BufferId(0), xss);
        m.insert(BufferId(1), ws);
        m
    }

    #[test]
    fn compiled_wavefront_matches_interpreter() {
        let (n, d, l, h) = (3usize, 4usize, 5usize, 8usize);
        let p = stacked_rnn_program(n, d, l, h);
        let inputs = rnn_inputs(n, d, l, h);
        let expected = run_program(&p, &inputs).unwrap();
        let compiled = compile(&p).unwrap();
        for threads in [1usize, 4] {
            let got = execute(&compiled, &inputs, threads).unwrap();
            assert_eq!(got.len(), expected.len());
            for (id, ft) in &expected {
                let g = &got[id];
                assert_eq!(g.prog_dims(), ft.prog_dims());
                assert_allclose(&g.to_flat().unwrap(), &ft.to_flat().unwrap(), 1e-5);
            }
        }
    }

    #[test]
    fn execution_is_deterministic_across_thread_counts() {
        let p = stacked_rnn_program(2, 3, 6, 4);
        let inputs = rnn_inputs(2, 3, 6, 4);
        let compiled = compile(&p).unwrap();
        let a = execute(&compiled, &inputs, 1).unwrap();
        for threads in [2usize, 7, 8] {
            let b = execute(&compiled, &inputs, threads).unwrap();
            for (id, ft) in &a {
                assert_eq!(ft, &b[id], "thread count {threads} changed the result");
            }
        }
    }

    #[test]
    fn pool_matches_reference_executor() {
        let p = stacked_rnn_program(2, 4, 5, 8);
        let inputs = rnn_inputs(2, 4, 5, 8);
        let compiled = compile(&p).unwrap();
        let pooled = execute(&compiled, &inputs, 4).unwrap();
        let reference = execute_reference(&compiled, &inputs, 4).unwrap();
        assert_eq!(pooled.len(), reference.len());
        for (id, ft) in &reference {
            assert_eq!(ft, &pooled[id], "pool diverged from reference executor");
        }
    }

    #[test]
    fn builder_api_picks_thread_count() {
        let p = stacked_rnn_program(2, 2, 3, 4);
        let inputs = rnn_inputs(2, 2, 3, 4);
        let compiled = compile(&p).unwrap();
        let a = Executor::new().threads(3).run(&compiled, &inputs).unwrap();
        let b = execute(&compiled, &inputs, 1).unwrap();
        for (id, ft) in &b {
            assert_eq!(ft, &a[id]);
        }
        // Zero clamps to one rather than hanging or panicking.
        let c = Executor::new().threads(0).run(&compiled, &inputs).unwrap();
        for (id, ft) in &b {
            assert_eq!(ft, &c[id]);
        }
    }

    #[test]
    fn wavefront_width_peaks_in_the_middle() {
        // The diagonal wavefront over (depth, time) starts and ends with a
        // single cell and is widest in the middle — the parallelism Figure
        // 9 visualizes with same-colour cells.
        let (n, d, l) = (1usize, 4usize, 6usize);
        let p = stacked_rnn_program(n, d, l, 4);
        let compiled = compile(&p).unwrap();
        let profile = wavefront_profile(&compiled, 0);
        assert_eq!(profile.len(), d + l - 1);
        let widths: Vec<usize> = profile.iter().map(|&(_, w)| w).collect();
        assert_eq!(widths[0], 1);
        assert_eq!(*widths.last().unwrap(), 1);
        let max = *widths.iter().max().unwrap();
        assert_eq!(max, d.min(l));
        // Total cells = D * L.
        assert_eq!(widths.iter().sum::<usize>(), d * l);
    }

    #[test]
    fn point_arena_matches_domain_enumeration() {
        let p = stacked_rnn_program(2, 3, 4, 4);
        let compiled = compile(&p).unwrap();
        let r = &compiled.groups[0].reordering;
        let d = r.bounds.len();
        let mut arena = Vec::new();
        let (lo, hi) = r.wavefront_range();
        let mut total = 0usize;
        for step in lo..hi {
            let n = points_into(r, step, &mut arena);
            assert_eq!(arena.len(), n * d);
            for pt in arena.chunks(d) {
                assert_eq!(pt[0], step, "arena point off its wavefront step");
            }
            total += n;
        }
        assert_eq!(total, r.domain.enumerate().unwrap().len());
    }

    #[test]
    fn shared_pool_is_reused_across_runs() {
        let p = stacked_rnn_program(2, 2, 3, 4);
        let inputs = rnn_inputs(2, 2, 3, 4);
        let compiled = compile(&p).unwrap();
        let pool = Arc::new(WorkerPool::new(3));
        let exec = Executor::new().pool(Arc::clone(&pool));
        let reference = execute(&compiled, &inputs, 1).unwrap();
        for _ in 0..3 {
            let got = exec.run(&compiled, &inputs).unwrap();
            for (id, ft) in &reference {
                assert_eq!(ft, &got[id], "shared-pool run diverged");
            }
        }
        // The executor sized itself by the pool, not the threads default.
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn arena_is_pooled_across_runs_and_leaves_are_never_cloned() {
        let p = stacked_rnn_program(2, 3, 4, 4);
        let inputs = rnn_inputs(2, 3, 4, 4);
        let compiled = compile(&p).unwrap();
        let exec = Executor::new().threads(2);
        let a = exec.run(&compiled, &inputs).unwrap();
        let b = exec.run(&compiled, &inputs).unwrap();
        for (id, ft) in &a {
            assert_eq!(ft, &b[id], "arena reuse changed the result");
        }
        let stats = exec.arena_stats();
        assert_eq!(stats.acquires, 2);
        assert!(
            stats.reused >= 1,
            "second run must reuse the arena: {stats:?}"
        );
        assert_eq!(stats.leaf_clones, 0, "arena path must never clone leaves");
        assert!(stats.leaf_borrows > 0);
        // A clone shares the same pool and counters.
        let cloned = exec.clone();
        assert_eq!(cloned.arena_stats(), stats);
    }

    #[test]
    fn guard_and_fallback_are_fixed_at_construction() {
        // Builder settings stick; `run` never consults the environment.
        let exec = Executor::new().guard(true).fallback(true);
        assert!(exec.guard);
        assert!(exec.fallback);
        let exec = Executor::new().guard(false).fallback(false);
        assert!(!exec.guard);
        assert!(!exec.fallback);
    }

    #[test]
    fn missing_input_is_an_error() {
        let p = stacked_rnn_program(2, 2, 2, 4);
        let compiled = compile(&p).unwrap();
        let err = execute(&compiled, &HashMap::new(), 1);
        assert!(matches!(err, Err(ExecError::Input(_))));
    }
}
