//! The multi-threaded wavefront executor.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::interp::BufferStore;
use ft_core::program::BufferKind;
use ft_core::BufferId;
use ft_etdg::RegionRead;
use ft_passes::{CompiledProgram, ScheduledGroup};
use ft_tensor::Tensor;

/// Execution errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Missing or malformed input.
    Input(String),
    /// A runtime invariant failed (unwritten read, double write, ...).
    Runtime(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Input(m) => write!(f, "input error: {m}"),
            ExecError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

fn core_err(e: ft_core::program::CoreError) -> ExecError {
    ExecError::Runtime(e.to_string())
}

/// Executes a compiled program on the given inputs with `threads` worker
/// threads (1 = fully sequential but still wavefront-ordered), returning
/// every output buffer.
pub fn execute(
    compiled: &CompiledProgram,
    inputs: &HashMap<BufferId, FractalTensor>,
    threads: usize,
) -> Result<HashMap<BufferId, FractalTensor>, ExecError> {
    let etdg = &compiled.etdg;
    let mut stores: Vec<BufferStore> = Vec::with_capacity(etdg.buffers.len());
    for (bi, buf) in etdg.buffers.iter().enumerate() {
        match buf.kind {
            BufferKind::Input => {
                let ft = inputs
                    .get(&BufferId(bi))
                    .ok_or_else(|| ExecError::Input(format!("missing input '{}'", buf.name)))?;
                if ft.prog_dims() != buf.dims {
                    return Err(ExecError::Input(format!(
                        "input '{}' dims {:?} != declared {:?}",
                        buf.name,
                        ft.prog_dims(),
                        buf.dims
                    )));
                }
                stores.push(BufferStore::from_fractal(ft).map_err(core_err)?);
            }
            _ => stores.push(BufferStore::new(&buf.dims, buf.leaf_shape.clone())),
        }
    }

    for group in &compiled.groups {
        run_group(compiled, group, &mut stores, threads.max(1))?;
    }

    let mut outputs = HashMap::new();
    for (bi, buf) in etdg.buffers.iter().enumerate() {
        if buf.kind == BufferKind::Output {
            outputs.insert(BufferId(bi), stores[bi].to_fractal().map_err(core_err)?);
        }
    }
    Ok(outputs)
}

/// One pending buffer write produced by a point task.
struct PointWrite {
    buffer: usize,
    idx: Vec<i64>,
    value: Tensor,
}

fn run_group(
    compiled: &CompiledProgram,
    group: &ScheduledGroup,
    stores: &mut [BufferStore],
    threads: usize,
) -> Result<(), ExecError> {
    let r = &group.reordering;
    let (lo, hi) = r.wavefront_range();
    for step in lo..hi {
        // All transformed points of this wavefront step.
        let points = points_at_step(r, step);
        if points.is_empty() {
            continue;
        }
        // Compute in parallel (reads only touch earlier steps or the
        // per-point overlay), then apply the writes serially.
        let chunk = points.len().div_ceil(threads);
        let mut results: Vec<Result<Vec<PointWrite>, ExecError>> = Vec::new();
        if threads == 1 || points.len() == 1 {
            results.push(run_points(compiled, group, stores, &points));
        } else {
            let chunks: Vec<&[Vec<i64>]> = points.chunks(chunk).collect();
            let shared: &[BufferStore] = stores;
            let outcome = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|c| scope.spawn(move |_| run_points(compiled, group, shared, c)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("crossbeam scope");
            results = outcome;
        }
        for r in results {
            for w in r? {
                stores[w.buffer].set(&w.idx, w.value).map_err(core_err)?;
            }
        }
    }
    Ok(())
}

/// Enumerates the transformed points with a fixed wavefront coordinate.
fn points_at_step(r: &ft_passes::Reordering, step: i64) -> Vec<Vec<i64>> {
    let d = r.bounds.len();
    let mut out = Vec::new();
    let mut current = vec![0i64; d];
    if r.sequential_dims == 0 {
        // Pure-parallel group: one "step" covering the whole domain.
        enumerate_from(r, 0, &mut current, &mut out);
        return out;
    }
    current[0] = step;
    enumerate_from(r, 1, &mut current, &mut out);
    out
}

fn enumerate_from(
    r: &ft_passes::Reordering,
    depth: usize,
    current: &mut Vec<i64>,
    out: &mut Vec<Vec<i64>>,
) {
    if depth == r.bounds.len() {
        out.push(current.clone());
        return;
    }
    let lb = &r.bounds[depth];
    let lo = lb.eval_lower(current);
    let hi = lb.eval_upper_exclusive(current);
    for v in lo..hi {
        current[depth] = v;
        enumerate_from(r, depth + 1, current, out);
    }
    current[depth] = 0;
}

/// Executes a batch of points (one worker's share of a wavefront step).
fn run_points(
    compiled: &CompiledProgram,
    group: &ScheduledGroup,
    stores: &[BufferStore],
    points: &[Vec<i64>],
) -> Result<Vec<PointWrite>, ExecError> {
    let etdg = &compiled.etdg;
    let mut writes = Vec::new();
    for j in points {
        let t = group
            .reordering
            .to_original(j)
            .map_err(|e| ExecError::Runtime(e.to_string()))?;
        // Per-point overlay: values produced by earlier members at this
        // point (fused cross-nest intermediates) are forwarded without
        // touching the stores.
        let mut overlay: HashMap<(usize, Vec<i64>), Tensor> = HashMap::new();
        for &member in &group.members {
            let block = etdg.block(member);
            if !block.domain.contains(&t) {
                continue;
            }
            let mut leaves = Vec::with_capacity(block.reads.len());
            for read in &block.reads {
                match read {
                    RegionRead::Fill { value, leaf_shape } => {
                        leaves.push(Tensor::full(leaf_shape.dims(), *value));
                    }
                    RegionRead::Buffer { buffer, map } => {
                        let idx = map
                            .apply(&t)
                            .map_err(|e| ExecError::Runtime(e.to_string()))?;
                        if let Some(v) = overlay.get(&(buffer.0, idx.clone())) {
                            leaves.push(v.clone());
                        } else {
                            leaves.push(
                                stores[buffer.0]
                                    .get(&idx)
                                    .map_err(|e| {
                                        ExecError::Runtime(format!(
                                            "block '{}' at t={t:?}: {e}",
                                            block.name
                                        ))
                                    })?
                                    .clone(),
                            );
                        }
                    }
                }
            }
            let results = block
                .udf
                .eval(&leaves)
                .map_err(|e| ExecError::Runtime(e.to_string()))?;
            for (w, value) in block.writes.iter().zip(results) {
                let idx = w
                    .map
                    .apply(&t)
                    .map_err(|e| ExecError::Runtime(e.to_string()))?;
                overlay.insert((w.buffer.0, idx.clone()), value.clone());
                writes.push(PointWrite {
                    buffer: w.buffer.0,
                    idx,
                    value,
                });
            }
        }
    }
    Ok(writes)
}

/// Executes a single group and reports how many points ran in each
/// wavefront step (used by tests and the parallelism examples).
pub fn wavefront_profile(compiled: &CompiledProgram, group_idx: usize) -> Vec<(i64, usize)> {
    let group = &compiled.groups[group_idx];
    let r = &group.reordering;
    let (lo, hi) = r.wavefront_range();
    (lo..hi)
        .map(|step| {
            let pts = points_at_step(r, step);
            // Only points that land in some member's domain count.
            let live = pts
                .iter()
                .filter(|j| {
                    r.to_original(j).is_ok_and(|t| {
                        group
                            .members
                            .iter()
                            .any(|&m| compiled.etdg.block(m).domain.contains(&t))
                    })
                })
                .count();
            (step, live)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    fn rnn_inputs(n: usize, d: usize, l: usize, h: usize) -> HashMap<BufferId, FractalTensor> {
        let xss = FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], 7), 2).unwrap();
        let ws =
            FractalTensor::from_flat(&Tensor::randn(&[d, h, h], 8).mul_scalar(0.2), 1).unwrap();
        let mut m = HashMap::new();
        m.insert(BufferId(0), xss);
        m.insert(BufferId(1), ws);
        m
    }

    #[test]
    fn compiled_wavefront_matches_interpreter() {
        let (n, d, l, h) = (3usize, 4usize, 5usize, 8usize);
        let p = stacked_rnn_program(n, d, l, h);
        let inputs = rnn_inputs(n, d, l, h);
        let expected = run_program(&p, &inputs).unwrap();
        let compiled = compile(&p).unwrap();
        for threads in [1usize, 4] {
            let got = execute(&compiled, &inputs, threads).unwrap();
            assert_eq!(got.len(), expected.len());
            for (id, ft) in &expected {
                let g = &got[id];
                assert_eq!(g.prog_dims(), ft.prog_dims());
                assert_allclose(&g.to_flat().unwrap(), &ft.to_flat().unwrap(), 1e-5);
            }
        }
    }

    #[test]
    fn execution_is_deterministic_across_thread_counts() {
        let p = stacked_rnn_program(2, 3, 6, 4);
        let inputs = rnn_inputs(2, 3, 6, 4);
        let compiled = compile(&p).unwrap();
        let a = execute(&compiled, &inputs, 1).unwrap();
        let b = execute(&compiled, &inputs, 8).unwrap();
        for (id, ft) in &a {
            assert_eq!(ft, &b[id], "thread count changed the result");
        }
    }

    #[test]
    fn wavefront_width_peaks_in_the_middle() {
        // The diagonal wavefront over (depth, time) starts and ends with a
        // single cell and is widest in the middle — the parallelism Figure
        // 9 visualizes with same-colour cells.
        let (n, d, l) = (1usize, 4usize, 6usize);
        let p = stacked_rnn_program(n, d, l, 4);
        let compiled = compile(&p).unwrap();
        let profile = wavefront_profile(&compiled, 0);
        assert_eq!(profile.len(), d + l - 1);
        let widths: Vec<usize> = profile.iter().map(|&(_, w)| w).collect();
        assert_eq!(widths[0], 1);
        assert_eq!(*widths.last().unwrap(), 1);
        let max = *widths.iter().max().unwrap();
        assert_eq!(max, d.min(l));
        // Total cells = D * L.
        assert_eq!(widths.iter().sum::<usize>(), d * l);
    }

    #[test]
    fn missing_input_is_an_error() {
        let p = stacked_rnn_program(2, 2, 2, 4);
        let compiled = compile(&p).unwrap();
        let err = execute(&compiled, &HashMap::new(), 1);
        assert!(matches!(err, Err(ExecError::Input(_))));
    }
}
