//! The code emitter: renders each launch group of a compiled program as a
//! pseudo-CUDA macro-kernel (paper §5.3).
//!
//! On the paper's system this step produces real CUDA through a C++ tile
//! library; here it produces faithful, readable pseudo-code demonstrating
//! the same structure — one `__global__` macro-kernel per launch group, a
//! host-side wavefront loop, per-region guards, tile staging hints from the
//! tile library, and the UDF body as tile operations. The text is used by
//! the `compiler_explorer` example and asserted on by tests; the simulator
//! consumes the same schedule numerically.

use ft_core::expr::{OpCode, Operand};
use ft_etdg::RegionRead;
use ft_passes::CompiledProgram;
use ft_sim::TileConfig;

/// Emission failures. The emitter sizes each launch group's tile staging
/// hints from a concrete leaf shape; a group that exposes neither a write
/// nor a readable leaf has no shape to size against, and guessing one
/// (the old behavior: a silent `[1, 1]`) picks a bogus `TileConfig` and
/// produces misleading staging hints — so it is a structured error instead.
#[derive(Debug, Clone, PartialEq)]
pub enum EmitError {
    /// No leaf shape could be derived for a launch group: its lead member
    /// has no writes and no buffer/fill reads.
    NoLeafShape {
        /// Launch group index.
        group: usize,
        /// Lead block name.
        block: String,
    },
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitError::NoLeafShape { group, block } => write!(
                f,
                "launch group {group} (lead block '{block}') has no writes and no \
                 readable leaf to derive a tile shape from"
            ),
        }
    }
}

impl std::error::Error for EmitError {}

/// The leaf shape a launch group's tile configuration is sized from: the
/// lead member's first write target, falling back to its first read (a
/// buffer's leaf shape or a fill's synthesized shape) for write-free
/// groups.
fn group_leaf_shape(
    etdg: &ft_etdg::Etdg,
    first: &ft_etdg::BlockNode,
    gi: usize,
) -> Result<ft_tensor::Shape, EmitError> {
    if let Some(w) = first.writes.first() {
        return Ok(etdg.buffer(w.buffer).leaf_shape.clone());
    }
    match first.reads.first() {
        Some(RegionRead::Buffer { buffer, .. }) => Ok(etdg.buffer(*buffer).leaf_shape.clone()),
        Some(RegionRead::Fill { leaf_shape, .. }) => Ok(leaf_shape.clone()),
        None => Err(EmitError::NoLeafShape {
            group: gi,
            block: first.name.clone(),
        }),
    }
}

/// Renders the whole compiled program.
pub fn emit_program(compiled: &CompiledProgram, smem_budget: u64) -> Result<String, EmitError> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let etdg = &compiled.etdg;
    let _ = writeln!(s, "// Emitted by the FractalTensor code emitter.");
    let _ = writeln!(s, "// Program: {}", etdg.name);
    let _ = writeln!(
        s,
        "// {} buffer node(s), {} launch group(s).\n",
        etdg.buffers.len(),
        compiled.groups.len()
    );
    for (bi, buf) in etdg.buffers.iter().enumerate() {
        let _ = writeln!(
            s,
            "// buffer %{bi} '{}' dims {:?} leaf {:?} ({:?})",
            buf.name,
            buf.dims,
            buf.leaf_shape.dims(),
            buf.kind
        );
    }
    for (gi, group) in compiled.groups.iter().enumerate() {
        let r = &group.reordering;
        let first = etdg.block(group.members[0]);
        let leaf = group_leaf_shape(etdg, first, gi)?;
        let m = leaf.dims().first().copied().unwrap_or(1);
        let n = leaf.dims().get(1).copied().unwrap_or(1);
        let tile = TileConfig::select(m, n, smem_budget);
        let _ = writeln!(s, "\n// ===== launch group {gi} =====");
        let ops: Vec<String> = group.ops.iter().map(|o| o.to_string()).collect();
        let _ = writeln!(s, "// operator vector: [{}]", ops.join(", "));
        let _ = writeln!(
            s,
            "// tile: {}x{}x{} (base tile {}, smem {} B)",
            tile.tm,
            tile.tn,
            tile.tk,
            ft_sim::tile::BASE_TILE,
            tile.smem_bytes()
        );
        if r.sequential_dims == 1 {
            let (lo, hi) = r.wavefront_range();
            let _ = writeln!(s, "// host: wavefront loop, {} step(s)", hi - lo);
            let _ = writeln!(s, "for (int w = {lo}; w < {hi}; ++w) {{");
            let _ = writeln!(
                s,
                "  group{gi}_kernel<<<grid_for_step(w), block, {}>>>(w, ...);",
                tile.smem_bytes()
            );
            let _ = writeln!(s, "}}");
        } else {
            let _ = writeln!(s, "// host: single fully-parallel launch");
            let _ = writeln!(
                s,
                "group{gi}_kernel<<<grid, block, {}>>>(...);",
                tile.smem_bytes()
            );
        }
        let _ = writeln!(s, "__global__ void group{gi}_kernel(int w, ...) {{");
        let _ = writeln!(s, "  // recover the original iteration vector t = Tinv * j");
        for (row, name) in ["t0", "t1", "t2", "t3", "t4", "t5"]
            .iter()
            .enumerate()
            .take(r.t_inv.rows())
        {
            let coeffs: Vec<String> = (0..r.t_inv.cols())
                .map(|c| format!("{}*j{}", r.t_inv.get(row, c), c))
                .collect();
            let _ = writeln!(s, "  int {} = {};", name, coeffs.join(" + "));
        }
        for &member in &group.members {
            let block = etdg.block(member);
            let _ = writeln!(s, "  // region '{}'", block.name);
            let guards: Vec<String> = block
                .domain
                .constraints()
                .iter()
                .map(|c| {
                    let terms: Vec<String> = c
                        .coeffs
                        .iter()
                        .enumerate()
                        .filter(|(_, &v)| v != 0)
                        .map(|(i, &v)| format!("{v}*t{i}"))
                        .collect();
                    format!("{} + {} >= 0", terms.join(" + "), c.constant)
                })
                .collect();
            let _ = writeln!(s, "  if ({}) {{", guards.join(" && "));
            for (ri, read) in block.reads.iter().enumerate() {
                match read {
                    RegionRead::Buffer { buffer, map } => {
                        let _ = writeln!(
                            s,
                            "    tile in{ri} = load_tile(%{} /*{}*/, {});",
                            buffer.0,
                            etdg.buffer(*buffer).name,
                            fmt_map(map)
                        );
                    }
                    RegionRead::Fill { value, leaf_shape } => {
                        let _ = writeln!(
                            s,
                            "    tile in{ri} = fill_tile({value}, {:?});",
                            leaf_shape.dims()
                        );
                    }
                }
            }
            for (si, stmt) in block.udf.stmts.iter().enumerate() {
                let args: Vec<String> = stmt.args.iter().map(fmt_operand).collect();
                let _ = writeln!(
                    s,
                    "    tile tmp{si} = {}({});",
                    fmt_opcode(&stmt.op),
                    args.join(", ")
                );
            }
            for (wi, w) in block.writes.iter().enumerate() {
                let out = fmt_operand(&block.udf.outputs[wi]);
                let _ = writeln!(
                    s,
                    "    store_tile(%{} /*{}*/, {}, {});",
                    w.buffer.0,
                    etdg.buffer(w.buffer).name,
                    fmt_map(&w.map),
                    out
                );
            }
            let _ = writeln!(s, "  }}");
        }
        let _ = writeln!(s, "}}");
    }
    Ok(s)
}

fn fmt_operand(o: &Operand) -> String {
    match o {
        Operand::In(k) => format!("in{k}"),
        Operand::Tmp(k) => format!("tmp{k}"),
    }
}

fn fmt_opcode(op: &OpCode) -> String {
    match op {
        OpCode::MatMul => "tile_gemm".into(),
        OpCode::MatMulT => "tile_gemm_tn".into(),
        OpCode::Add => "tile_add".into(),
        OpCode::Sub => "tile_sub".into(),
        OpCode::Mul => "tile_mul".into(),
        OpCode::Div => "tile_div".into(),
        OpCode::Max => "tile_max".into(),
        OpCode::AddColBc => "tile_add_colbc".into(),
        OpCode::SubColBc => "tile_sub_colbc".into(),
        OpCode::MulColBc => "tile_mul_colbc".into(),
        OpCode::DivColBc => "tile_div_colbc".into(),
        OpCode::Scale(v) => format!("tile_scale<{v}>"),
        OpCode::AddScalar(v) => format!("tile_addscalar<{v}>"),
        OpCode::Tanh => "tile_tanh".into(),
        OpCode::Sigmoid => "tile_sigmoid".into(),
        OpCode::Exp => "tile_exp".into(),
        OpCode::Neg => "tile_neg".into(),
        OpCode::Relu => "tile_relu".into(),
        OpCode::RowMax => "tile_rowmax".into(),
        OpCode::RowSum => "tile_rowsum".into(),
        OpCode::Softmax => "tile_softmax".into(),
        OpCode::Concat(a) => format!("tile_concat<{a}>"),
        OpCode::Slice { axis, start, end } => format!("tile_slice<{axis},{start},{end}>"),
        OpCode::Transpose => "tile_transpose".into(),
        OpCode::Id => "tile_copy".into(),
        OpCode::Silu => "tile_silu".into(),
        OpCode::FusedMatMul { transb, epi } => {
            let base = if *transb {
                "tile_gemm_tn_epi"
            } else {
                "tile_gemm_epi"
            };
            format!("{base}<{}>", fmt_epi(epi))
        }
        OpCode::EwChain(ops) => format!("tile_ewchain<{}>", fmt_epi(ops)),
    }
}

fn fmt_epi(ops: &[ft_simd::EpiOp]) -> String {
    use ft_simd::EpiOp;
    let names: Vec<String> = ops
        .iter()
        .map(|op| match op {
            EpiOp::Add => "add".into(),
            EpiOp::Sub => "sub".into(),
            EpiOp::RSub => "rsub".into(),
            EpiOp::Mul => "mul".into(),
            EpiOp::Div => "div".into(),
            EpiOp::RDiv => "rdiv".into(),
            EpiOp::Max => "max".into(),
            EpiOp::Scale(c) => format!("scale:{c}"),
            EpiOp::AddScalar(c) => format!("addscalar:{c}"),
            EpiOp::Neg => "neg".into(),
            EpiOp::Relu => "relu".into(),
            EpiOp::Exp => "exp".into(),
            EpiOp::Sigmoid => "sigmoid".into(),
            EpiOp::Tanh => "tanh".into(),
            EpiOp::Silu => "silu".into(),
        })
        .collect();
    names.join(",")
}

fn fmt_map(map: &ft_affine::AffineMap) -> String {
    let rows: Vec<String> = (0..map.data_dims())
        .map(|r| {
            let terms: Vec<String> = (0..map.iter_dims())
                .filter(|&c| map.matrix().get(r, c) != 0)
                .map(|c| {
                    let v = map.matrix().get(r, c);
                    if v == 1 {
                        format!("t{c}")
                    } else {
                        format!("{v}*t{c}")
                    }
                })
                .collect();
            let mut expr = if terms.is_empty() {
                "0".to_string()
            } else {
                terms.join("+")
            };
            let o = map.offset()[r];
            if o != 0 {
                expr = format!("{expr}{o:+}");
            }
            expr
        })
        .collect();
    format!("[{}]", rows.join("]["))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_core::builders::stacked_rnn_program;
    use ft_passes::compile;

    #[test]
    fn emission_contains_wavefront_and_regions() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let compiled = compile(&p).unwrap();
        let code = emit_program(&compiled, 192 * 1024).unwrap();
        // One macro-kernel, a host wavefront loop, all four regions, and
        // the cell math as tile ops.
        assert!(code.contains("group0_kernel"), "{code}");
        assert!(code.contains("wavefront loop"));
        assert!(code.contains("region0"));
        assert!(code.contains("region3"));
        // Fusion folds the `+ s` into the GEMM's register-tile epilogue.
        assert!(code.contains("tile_gemm_epi<add>") || code.contains("tile_gemm_tn_epi<add>"));
        assert!(code.contains("load_tile"));
        assert!(code.contains("store_tile"));
        // The shifted self-read appears with its -1 offset.
        assert!(code.contains("t2-1") || code.contains("t1-1"), "{code}");
    }

    #[test]
    fn emission_mentions_tile_shapes() {
        let p = stacked_rnn_program(2, 3, 4, 512);
        let compiled = compile(&p).unwrap();
        let code = emit_program(&compiled, 192 * 1024).unwrap();
        assert!(code.contains("tile:"));
        assert!(code.contains("base tile 16"));
    }

    #[test]
    fn write_free_group_sizes_tiles_from_reads() {
        // Strip the lead member's writes: the tile shape must come from its
        // reads (leaf [1, 8] here), not from a silent [1, 1] substitute.
        let p = stacked_rnn_program(2, 3, 4, 8);
        let mut compiled = compile(&p).unwrap();
        let lead = compiled.groups[0].members[0];
        compiled.etdg.blocks[lead.0].writes.clear();
        let first = compiled.etdg.block(lead);
        let leaf = group_leaf_shape(&compiled.etdg, first, 0).unwrap();
        assert_eq!(leaf.dims(), &[1, 8]);
        let code = emit_program(&compiled, 192 * 1024).unwrap();
        // A [1, 8]-leaf tile, not the 1x1x1 a [1, 1] guess would produce.
        assert!(!code.contains("tile: 1x1x"), "{code}");
    }

    #[test]
    fn group_with_no_shape_source_is_a_structured_error() {
        let p = stacked_rnn_program(2, 3, 4, 8);
        let mut compiled = compile(&p).unwrap();
        let lead = compiled.groups[0].members[0];
        compiled.etdg.blocks[lead.0].writes.clear();
        compiled.etdg.blocks[lead.0].reads.clear();
        let err = emit_program(&compiled, 192 * 1024).unwrap_err();
        match &err {
            EmitError::NoLeafShape { group, block } => {
                assert_eq!(*group, 0);
                assert!(
                    block.contains("region"),
                    "lead block named in error: {block}"
                );
            }
        }
        assert!(err.to_string().contains("no writes"));
    }
}
