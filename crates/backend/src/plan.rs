//! Per-group access plans: everything the per-point inner loop needs,
//! precomputed once at launch-group entry.
//!
//! The executor's hot loop used to do, per point, a `T⁻¹·j` matvec through
//! `Reordering::to_original` (allocating), one `AffineMap::apply` per read
//! and write (allocating), and a `HashMap<(usize, Vec<i64>), Tensor>`
//! overlay lookup keyed by freshly cloned index vectors, cloning every leaf
//! tensor into the UDF argument list. The plan now goes further than the
//! PR-2 version: on top of folding the group's unimodular reordering into
//! every member's access maps (`i = (M·T⁻¹)·j + o`, flattened row-major)
//! and precomputing forwarding candidates, it resolves every access against
//! the [`ft_passes::MemoryPlan`] — so a read or write is a *flat element
//! offset* into one contiguous arena (or an extern input borrow), an affine
//! function of the wavefront point. Constant fills are materialized once at
//! plan time, and each member's UDF is compiled to a [`UdfPlan`]: shapes
//! inferred once, scratch windows laid out by prefix sums, every statement
//! dispatching to `ft_tensor::slices` kernels over borrowed slices. The
//! run-time inner loop allocates nothing and clones no tensors.

use ft_affine::ConstraintSet;
use ft_core::expr::{OpCode, Operand, Udf};
use ft_etdg::RegionRead;
use ft_passes::{CompiledProgram, Placement, ScheduledGroup};
use ft_tensor::Shape;

use crate::exec::ExecError;

/// Where an access's leaves live, resolved from the memory plan.
#[derive(Clone, Copy)]
pub(crate) enum Place {
    /// Arena range: `offset` is the buffer's base element, `slot_off` its
    /// base leaf in the written bitmap.
    Arena { offset: usize, slot_off: usize },
    /// Caller-owned extern input, indexed through the per-run leaf table.
    Extern,
}

/// One composed, layout-resolved buffer access.
pub(crate) struct Access {
    /// Buffer index.
    pub buffer: usize,
    /// Flattened `rows × dims` composed access matrix.
    pub mat: Vec<i64>,
    /// Offset vector (`rows` entries).
    pub off: Vec<i64>,
    /// Data-space rank of the access.
    pub rows: usize,
    /// Buffer extents per data dimension (the always-on range check).
    pub extents: Vec<i64>,
    /// Row-major leaf strides: flat leaf = `Σ leaf_strides[r]·idx[r]`.
    pub leaf_strides: Vec<i64>,
    /// Elements per leaf.
    pub leaf_len: usize,
    /// Arena or extern placement.
    pub place: Place,
}

/// One buffer read, partially evaluated against the group reordering.
pub(crate) enum ReadPlan {
    /// A constant-fill read; `fill` indexes [`MemberPlan::fills`], whose
    /// data was materialized once at plan time (never per point).
    Fill {
        /// Index into the member's cached fill constants.
        fill: usize,
    },
    /// A buffer read through the composed map `i = (M·T⁻¹)·j + o`.
    Buffer {
        /// The composed access.
        access: Access,
        /// Scratch slots of earlier member writes to the same buffer that
        /// this read may forward from, latest-written first. The flag is
        /// true when the write's composed map is identical to this read's,
        /// so a populated slot is a guaranteed hit with no index compare.
        candidates: Vec<(usize, bool)>,
    },
}

/// One buffer write, partially evaluated against the group reordering.
pub(crate) struct WritePlan {
    /// The composed access (always arena-placed; extern inputs are
    /// rejected at plan build).
    pub access: Access,
    /// Dense scratch slot forwarding this value to later members.
    pub slot: usize,
}

/// Where a UDF statement argument (or output) comes from.
#[derive(Clone, Copy)]
pub(crate) enum ArgSrc {
    /// The member's k-th read (resolved per point into a borrowed slice).
    In(usize),
    /// An earlier statement's scratch window.
    Tmp {
        /// Window start in the member's tmps scratch.
        off: usize,
        /// Window length.
        len: usize,
    },
}

/// One UDF statement with shapes and scratch windows resolved at plan time.
pub(crate) struct StmtPlan {
    /// The operation.
    pub op: OpCode,
    /// Argument sources.
    pub args: Vec<ArgSrc>,
    /// Argument dims (validated once here, never re-checked per point).
    pub arg_dims: Vec<Vec<usize>>,
    /// Result window start in the member's tmps scratch.
    pub out_off: usize,
    /// Result window length.
    pub out_len: usize,
}

/// A UDF compiled for slice evaluation: every shape inferred once, every
/// scratch window a plan-time constant.
pub(crate) struct UdfPlan {
    /// The statements in SSA order.
    pub stmts: Vec<StmtPlan>,
    /// Output sources with lengths, in write order.
    pub outputs: Vec<(ArgSrc, usize)>,
    /// Total scratch length for all statement results.
    pub tmps_len: usize,
}

/// One group member with its reads/writes pre-transformed.
pub(crate) struct MemberPlan {
    /// Diagnostic block name (for runtime error messages).
    pub name: String,
    /// Exact iteration domain in the *original* space.
    pub domain: ConstraintSet,
    /// The member's UDF, compiled against its input leaf shapes.
    pub udf: UdfPlan,
    /// Reads in UDF input order.
    pub reads: Vec<ReadPlan>,
    /// Writes in UDF output order.
    pub writes: Vec<WritePlan>,
    /// Constant fill data, materialized once (satellite of the arena PR:
    /// the old plan re-ran `Tensor::full` at every wavefront point).
    pub fills: Vec<Vec<f32>>,
}

/// The full access plan for one launch group.
pub(crate) struct GroupPlan {
    /// Transformed-space dimensionality.
    pub dims: usize,
    /// Flattened `dims × dims` inverse transform (for `t = T⁻¹·j`, needed
    /// by domain guards and error messages).
    pub t_inv: Vec<i64>,
    /// Members in region order.
    pub members: Vec<MemberPlan>,
    /// Start of each slot's data window in the flat slot-data scratch.
    pub slot_data_offsets: Vec<usize>,
    /// Total length of the flat slot-data scratch.
    pub slot_data_len: usize,
    /// Largest data-space rank over all accesses (sizes the index scratch).
    pub max_rows: usize,
    /// Largest UDF scratch length over all members.
    pub max_tmps_len: usize,
    /// Buffer names by index (guard-mode and degradation diagnostics).
    pub buffer_names: Vec<String>,
}

impl GroupPlan {
    /// Number of scratch slots (one per member write).
    pub fn slots(&self) -> usize {
        self.slot_data_offsets.len()
    }

    /// Builds the plan for `group` of `compiled`.
    pub fn build(compiled: &CompiledProgram, group: &ScheduledGroup) -> Result<Self, ExecError> {
        let r = &group.reordering;
        let d = r.t_inv.rows();
        let mut t_inv = Vec::with_capacity(d * d);
        for i in 0..d {
            t_inv.extend_from_slice(r.t_inv.row(i));
        }

        let mut members = Vec::with_capacity(group.members.len());
        let mut slot_data_offsets = Vec::new();
        let mut slot_data_len = 0usize;
        let mut max_rows = 0usize;
        let mut max_tmps_len = 0usize;
        // (buffer, mat, off, slot) of every write planned so far — the
        // forwarding candidates for subsequent members' reads.
        let mut planned_writes: Vec<(usize, Vec<i64>, Vec<i64>, usize)> = Vec::new();

        for &m in &group.members {
            let block = compiled.etdg.block(m);
            let mut reads = Vec::with_capacity(block.reads.len());
            let mut fills: Vec<Vec<f32>> = Vec::new();
            let mut input_shapes: Vec<Shape> = Vec::with_capacity(block.reads.len());
            for read in &block.reads {
                match read {
                    RegionRead::Fill { value, leaf_shape } => {
                        reads.push(ReadPlan::Fill { fill: fills.len() });
                        fills.push(vec![*value; leaf_shape.numel()]);
                        input_shapes.push(leaf_shape.clone());
                    }
                    RegionRead::Buffer { buffer, map } => {
                        let access = build_access(compiled, group, buffer.0, map)?;
                        max_rows = max_rows.max(access.rows);
                        input_shapes.push(compiled.etdg.buffer(*buffer).leaf_shape.clone());
                        let candidates = planned_writes
                            .iter()
                            .rev()
                            .filter(|(b, ..)| *b == buffer.0)
                            .map(|(_, wmat, woff, slot)| {
                                (*slot, *wmat == access.mat && *woff == access.off)
                            })
                            .collect();
                        reads.push(ReadPlan::Buffer { access, candidates });
                    }
                }
            }
            let mut writes = Vec::with_capacity(block.writes.len());
            for w in &block.writes {
                let access = build_access(compiled, group, w.buffer.0, &w.map)?;
                if matches!(access.place, Place::Extern) {
                    return Err(ExecError::Runtime(format!(
                        "block '{}' writes extern input buffer '{}'",
                        block.name,
                        compiled.etdg.buffer(w.buffer).name
                    )));
                }
                max_rows = max_rows.max(access.rows);
                let slot = slot_data_offsets.len();
                slot_data_offsets.push(slot_data_len);
                slot_data_len += access.leaf_len;
                planned_writes.push((w.buffer.0, access.mat.clone(), access.off.clone(), slot));
                writes.push(WritePlan { access, slot });
            }
            let udf = build_udf_plan(&block.udf, &input_shapes)?;
            for (w, (_, out_len)) in writes.iter().zip(&udf.outputs) {
                if w.access.leaf_len != *out_len {
                    return Err(ExecError::Runtime(format!(
                        "block '{}': UDF output length {} != leaf length {} of buffer '{}'",
                        block.name,
                        out_len,
                        w.access.leaf_len,
                        compiled.etdg.buffers[w.access.buffer].name
                    )));
                }
            }
            max_tmps_len = max_tmps_len.max(udf.tmps_len);
            // Scratch accounting for the fusion pass: `tmps_len` covers
            // every statement including the outputs themselves, so a fully
            // fused UDF has scratch == output elements and the difference
            // is exactly the intermediates fusion failed to absorb.
            let out_elems: usize = udf.outputs.iter().map(|(_, n)| n).sum();
            ft_probe::counter("exec.udf_scratch_elems", udf.tmps_len as f64);
            ft_probe::counter("exec.udf_output_elems", out_elems as f64);
            members.push(MemberPlan {
                name: block.name.clone(),
                domain: block.domain.clone(),
                udf,
                reads,
                writes,
                fills,
            });
        }
        Ok(GroupPlan {
            dims: d,
            t_inv,
            members,
            slot_data_offsets,
            slot_data_len,
            max_rows,
            max_tmps_len,
            buffer_names: compiled
                .etdg
                .buffers
                .iter()
                .map(|b| b.name.clone())
                .collect(),
        })
    }

    /// Fault-injection hook: shifts the first offset component of one
    /// member's read plan by `delta`, modelling a corrupted access map.
    /// Out-of-range `member`/`read` coordinates are ignored. Test/bench
    /// only — never reachable without an explicit
    /// [`FaultPlan`](crate::exec::FaultPlan).
    pub fn corrupt_read_offset(&mut self, member: usize, read: usize, delta: i64) {
        if let Some(ReadPlan::Buffer { access, .. }) = self
            .members
            .get_mut(member)
            .and_then(|m| m.reads.get_mut(read))
        {
            if let Some(o) = access.off.first_mut() {
                *o += delta;
            }
        }
    }
}

/// Composes an access map with the group reordering and resolves its
/// buffer's flat layout from the memory plan.
fn build_access(
    compiled: &CompiledProgram,
    group: &ScheduledGroup,
    buffer: usize,
    map: &ft_affine::AffineMap,
) -> Result<Access, ExecError> {
    let (mat, off, rows) = flatten_map(group, map)?;
    let layout = &compiled.memory.buffers[buffer];
    let place = match layout.placement {
        Placement::Extern => Place::Extern,
        Placement::Arena { offset, slot_off } => Place::Arena { offset, slot_off },
    };
    Ok(Access {
        buffer,
        mat,
        off,
        rows,
        extents: layout.dims.iter().map(|&d| d as i64).collect(),
        leaf_strides: layout.leaf_strides.clone(),
        leaf_len: layout.leaf_len,
        place,
    })
}

/// Compiles a UDF against its input leaf shapes: infer every statement
/// shape once, lay the scratch windows out by prefix sums, and freeze the
/// argument dims the slice kernels will assume.
fn build_udf_plan(udf: &Udf, input_shapes: &[Shape]) -> Result<UdfPlan, ExecError> {
    let shapes = udf
        .infer_shapes(input_shapes)
        .map_err(|e| ExecError::Runtime(e.to_string()))?;
    let mut tmp_offs = Vec::with_capacity(udf.stmts.len());
    let mut tmps_len = 0usize;
    for s in &shapes.stmts {
        tmp_offs.push(tmps_len);
        tmps_len += s.numel();
    }
    let src = |o: &Operand| -> ArgSrc {
        match o {
            Operand::In(k) => ArgSrc::In(*k),
            Operand::Tmp(k) => ArgSrc::Tmp {
                off: tmp_offs[*k],
                len: shapes.stmts[*k].numel(),
            },
        }
    };
    let dims_of = |o: &Operand| -> Vec<usize> {
        match o {
            Operand::In(k) => input_shapes[*k].dims().to_vec(),
            Operand::Tmp(k) => shapes.stmts[*k].dims().to_vec(),
        }
    };
    let stmts = udf
        .stmts
        .iter()
        .enumerate()
        .map(|(i, s)| StmtPlan {
            op: s.op.clone(),
            args: s.args.iter().map(&src).collect(),
            arg_dims: s.args.iter().map(&dims_of).collect(),
            out_off: tmp_offs[i],
            out_len: shapes.stmts[i].numel(),
        })
        .collect();
    let outputs = udf
        .outputs
        .iter()
        .zip(&shapes.outputs)
        .map(|(o, sh)| (src(o), sh.numel()))
        .collect();
    Ok(UdfPlan {
        stmts,
        outputs,
        tmps_len,
    })
}

/// Composes an access map with the group reordering and flattens it.
fn flatten_map(
    group: &ScheduledGroup,
    map: &ft_affine::AffineMap,
) -> Result<(Vec<i64>, Vec<i64>, usize), ExecError> {
    let composed = group
        .reordering
        .transform_map(map)
        .map_err(|e| ExecError::Runtime(e.to_string()))?;
    let m = composed.matrix();
    let rows = m.rows();
    let mut mat = Vec::with_capacity(rows * m.cols());
    for i in 0..rows {
        mat.extend_from_slice(m.row(i));
    }
    Ok((mat, composed.offset().to_vec(), rows))
}

/// `out[r] = Σ_c mat[r·d + c]·x[c]` — the flat matvec of the hot loop.
#[inline]
pub(crate) fn matvec_flat(mat: &[i64], rows: usize, d: usize, x: &[i64], out: &mut [i64]) {
    for r in 0..rows {
        let row = &mat[r * d..r * d + d];
        let mut acc = 0i64;
        for (m, v) in row.iter().zip(x.iter()) {
            acc += m * v;
        }
        out[r] = acc;
    }
}

/// `out[r] = off[r] + Σ_c mat[r·d + c]·x[c]` — one strength-reduced access.
#[inline]
pub(crate) fn affine_flat(
    mat: &[i64],
    off: &[i64],
    rows: usize,
    d: usize,
    x: &[i64],
    out: &mut [i64],
) {
    matvec_flat(mat, rows, d, x, out);
    for (o, &b) in out[..rows].iter_mut().zip(off.iter()) {
        *o += b;
    }
}
