//! Per-group access plans: everything the per-point inner loop needs,
//! precomputed once at launch-group entry.
//!
//! The executor's hot loop used to do, per point, a `T⁻¹·j` matvec through
//! `Reordering::to_original` (allocating), one `AffineMap::apply` per read
//! and write (allocating), and a `HashMap<(usize, Vec<i64>), Tensor>`
//! overlay lookup keyed by freshly cloned index vectors. The plan folds
//! the group's unimodular reordering into every member's access maps
//! (`i = (M·T⁻¹)·j + o`, flattened row-major), assigns each member write a
//! dense *scratch slot*, and resolves at plan time which earlier slots a
//! read could forward from — including whether the composed maps are
//! identical, in which case the per-point index comparison is skipped
//! entirely. At run time the inner loop is nothing but flat `i64`
//! multiply-adds into reusable scratch buffers.

use ft_affine::ConstraintSet;
use ft_core::expr::Udf;
use ft_etdg::RegionRead;
use ft_passes::{CompiledProgram, ScheduledGroup};

use crate::exec::ExecError;

/// One buffer read, partially evaluated against the group reordering.
pub(crate) enum ReadPlan {
    /// A constant-fill read (no buffer touched).
    Fill {
        /// Fill value.
        value: f32,
        /// Leaf dims of the produced tensor.
        dims: Vec<usize>,
    },
    /// A buffer read through the composed map `i = (M·T⁻¹)·j + o`.
    Buffer {
        /// Buffer index.
        buffer: usize,
        /// Flattened `rows × dims` composed access matrix.
        mat: Vec<i64>,
        /// Offset vector (`rows` entries).
        off: Vec<i64>,
        /// Data-space rank of the access.
        rows: usize,
        /// Scratch slots of earlier member writes to the same buffer that
        /// this read may forward from, latest-written first. The flag is
        /// true when the write's composed map is identical to this read's,
        /// so a populated slot is a guaranteed hit with no index compare.
        candidates: Vec<(usize, bool)>,
    },
}

/// One buffer write, partially evaluated against the group reordering.
pub(crate) struct WritePlan {
    /// Buffer index.
    pub buffer: usize,
    /// Flattened `rows × dims` composed access matrix.
    pub mat: Vec<i64>,
    /// Offset vector.
    pub off: Vec<i64>,
    /// Data-space rank of the access.
    pub rows: usize,
    /// Dense scratch slot forwarding this value to later members.
    pub slot: usize,
}

/// One group member with its reads/writes pre-transformed.
pub(crate) struct MemberPlan {
    /// Diagnostic block name (for runtime error messages).
    pub name: String,
    /// Exact iteration domain in the *original* space.
    pub domain: ConstraintSet,
    /// The member's UDF.
    pub udf: Udf,
    /// Reads in UDF input order.
    pub reads: Vec<ReadPlan>,
    /// Writes in UDF output order.
    pub writes: Vec<WritePlan>,
}

/// The full access plan for one launch group.
pub(crate) struct GroupPlan {
    /// Transformed-space dimensionality.
    pub dims: usize,
    /// Flattened `dims × dims` inverse transform (for `t = T⁻¹·j`, needed
    /// by domain guards and error messages).
    pub t_inv: Vec<i64>,
    /// Members in region order.
    pub members: Vec<MemberPlan>,
    /// Start of each slot's index window in the flat slot-index scratch.
    pub slot_offsets: Vec<usize>,
    /// Total length of the flat slot-index scratch.
    pub slot_idx_len: usize,
    /// Largest data-space rank over all accesses (sizes the index scratch).
    pub max_rows: usize,
    /// Buffer names by index (guard-mode and degradation diagnostics).
    pub buffer_names: Vec<String>,
}

impl GroupPlan {
    /// Number of scratch slots (one per member write).
    pub fn slots(&self) -> usize {
        self.slot_offsets.len()
    }

    /// Builds the plan for `group` of `compiled`.
    pub fn build(compiled: &CompiledProgram, group: &ScheduledGroup) -> Result<Self, ExecError> {
        let r = &group.reordering;
        let d = r.t_inv.rows();
        let mut t_inv = Vec::with_capacity(d * d);
        for i in 0..d {
            t_inv.extend_from_slice(r.t_inv.row(i));
        }

        let mut members = Vec::with_capacity(group.members.len());
        let mut slot_offsets = Vec::new();
        let mut slot_idx_len = 0usize;
        let mut max_rows = 0usize;
        // (buffer, mat, off, slot) of every write planned so far — the
        // forwarding candidates for subsequent members' reads.
        let mut planned_writes: Vec<(usize, Vec<i64>, Vec<i64>, usize)> = Vec::new();

        for &m in &group.members {
            let block = compiled.etdg.block(m);
            let mut reads = Vec::with_capacity(block.reads.len());
            for read in &block.reads {
                match read {
                    RegionRead::Fill { value, leaf_shape } => reads.push(ReadPlan::Fill {
                        value: *value,
                        dims: leaf_shape.dims().to_vec(),
                    }),
                    RegionRead::Buffer { buffer, map } => {
                        let (mat, off, rows) = flatten_map(group, map)?;
                        max_rows = max_rows.max(rows);
                        let candidates = planned_writes
                            .iter()
                            .rev()
                            .filter(|(b, ..)| *b == buffer.0)
                            .map(|(_, wmat, woff, slot)| (*slot, *wmat == mat && *woff == off))
                            .collect();
                        reads.push(ReadPlan::Buffer {
                            buffer: buffer.0,
                            mat,
                            off,
                            rows,
                            candidates,
                        });
                    }
                }
            }
            let mut writes = Vec::with_capacity(block.writes.len());
            for w in &block.writes {
                let (mat, off, rows) = flatten_map(group, &w.map)?;
                max_rows = max_rows.max(rows);
                let slot = slot_offsets.len();
                slot_offsets.push(slot_idx_len);
                slot_idx_len += rows;
                planned_writes.push((w.buffer.0, mat.clone(), off.clone(), slot));
                writes.push(WritePlan {
                    buffer: w.buffer.0,
                    mat,
                    off,
                    rows,
                    slot,
                });
            }
            members.push(MemberPlan {
                name: block.name.clone(),
                domain: block.domain.clone(),
                udf: block.udf.clone(),
                reads,
                writes,
            });
        }
        Ok(GroupPlan {
            dims: d,
            t_inv,
            members,
            slot_offsets,
            slot_idx_len,
            max_rows,
            buffer_names: compiled
                .etdg
                .buffers
                .iter()
                .map(|b| b.name.clone())
                .collect(),
        })
    }

    /// Fault-injection hook: shifts the first offset component of one
    /// member's read plan by `delta`, modelling a corrupted access map.
    /// Out-of-range `member`/`read` coordinates are ignored. Test/bench
    /// only — never reachable without an explicit
    /// [`FaultPlan`](crate::exec::FaultPlan).
    pub fn corrupt_read_offset(&mut self, member: usize, read: usize, delta: i64) {
        if let Some(ReadPlan::Buffer { off, .. }) = self
            .members
            .get_mut(member)
            .and_then(|m| m.reads.get_mut(read))
        {
            if let Some(o) = off.first_mut() {
                *o += delta;
            }
        }
    }
}

/// Composes an access map with the group reordering and flattens it.
fn flatten_map(
    group: &ScheduledGroup,
    map: &ft_affine::AffineMap,
) -> Result<(Vec<i64>, Vec<i64>, usize), ExecError> {
    let composed = group
        .reordering
        .transform_map(map)
        .map_err(|e| ExecError::Runtime(e.to_string()))?;
    let m = composed.matrix();
    let rows = m.rows();
    let mut mat = Vec::with_capacity(rows * m.cols());
    for i in 0..rows {
        mat.extend_from_slice(m.row(i));
    }
    Ok((mat, composed.offset().to_vec(), rows))
}

/// `out[r] = Σ_c mat[r·d + c]·x[c]` — the flat matvec of the hot loop.
#[inline]
pub(crate) fn matvec_flat(mat: &[i64], rows: usize, d: usize, x: &[i64], out: &mut [i64]) {
    for r in 0..rows {
        let row = &mat[r * d..r * d + d];
        let mut acc = 0i64;
        for (m, v) in row.iter().zip(x.iter()) {
            acc += m * v;
        }
        out[r] = acc;
    }
}

/// `out[r] = off[r] + Σ_c mat[r·d + c]·x[c]` — one strength-reduced access.
#[inline]
pub(crate) fn affine_flat(
    mat: &[i64],
    off: &[i64],
    rows: usize,
    d: usize,
    x: &[i64],
    out: &mut [i64],
) {
    matvec_flat(mat, rows, d, x, out);
    for (o, &b) in out[..rows].iter_mut().zip(off.iter()) {
        *o += b;
    }
}
