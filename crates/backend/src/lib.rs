//! # ft-backend
//!
//! Schedule execution for compiled FractalTensor programs.
//!
//! Three facilities live here:
//!
//! * [`exec`] — a real multi-threaded CPU executor. It walks a
//!   [`ft_passes::CompiledProgram`] group by group; within a group it runs
//!   the wavefront dimension sequentially and fans every iteration of the
//!   remaining (parallel) dimensions out over a persistent
//!   [`ft_pool::WorkerPool`] fed by an atomic chunk cursor. Each group's
//!   access maps are partially evaluated once into an access plan
//!   (`plan`), and cross-nest members fused into one group forward
//!   intermediates through a dense per-point scratch-slot table — the
//!   register/shared-memory forwarding a fused macro-kernel performs on
//!   the GPU.
//! * [`reference`] — the pre-pool executor (scoped-thread spawn per
//!   wavefront step, hashed overlay), kept as the benchmark baseline and
//!   a differential oracle.
//! * [`emit`] — the code emitter: walks the same schedule and renders each
//!   launch group as a pseudo-CUDA macro-kernel (grid shape, wavefront
//!   loop, region guards, the UDF body, and the tile-library staging
//!   hints), demonstrating the §5.3 lowering without requiring a GPU.
//!
//! Executor outputs are tested bit-for-bit against the naive
//! `ft_core::interp` oracle across the workspace.

#![forbid(unsafe_code)]
// Fault paths must degrade into typed errors, never panic-crash: non-test
// code in this crate is unwrap/expect-free (CI's chaos job checks --lib).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod emit;
pub mod exec;
mod plan;
pub mod reference;

pub use emit::{emit_program, EmitError};
pub use exec::{execute, Degradation, ExecError, ExecOutcome, Executor, FaultPlan};
pub use reference::execute_reference;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ExecError>;
