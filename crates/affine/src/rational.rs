//! Exact rational arithmetic over `i64`, overflow-checked.

use crate::{gcd, AffineError, Result};

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(|num|, den) == 1` as invariants.
///
/// All arithmetic is overflow-checked: rather than silently wrapping, ops
/// return [`AffineError::Overflow`] so compiler analyses fail loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i64,
    den: i64,
}

impl Rational {
    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num / den`, normalizing sign and reducing.
    pub fn new(num: i64, den: i64) -> Result<Self> {
        if den == 0 {
            return Err(AffineError::DivisionByZero);
        }
        let sign = if den < 0 { -1 } else { 1 };
        let num = num.checked_mul(sign).ok_or(AffineError::Overflow)?;
        let den = den.checked_mul(sign).ok_or(AffineError::Overflow)?;
        let g = gcd(num, den).max(1);
        Ok(Rational {
            num: num / g,
            den: den / g,
        })
    }

    /// An integer as a rational.
    pub fn from_int(n: i64) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(&self) -> i64 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(&self) -> i64 {
        self.den
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// The integer value, if integral.
    pub fn to_int(&self) -> Option<i64> {
        if self.den == 1 {
            Some(self.num)
        } else {
            None
        }
    }

    /// Checked addition.
    pub fn add(&self, other: &Rational) -> Result<Rational> {
        let a = self
            .num
            .checked_mul(other.den)
            .ok_or(AffineError::Overflow)?;
        let b = other
            .num
            .checked_mul(self.den)
            .ok_or(AffineError::Overflow)?;
        Rational::new(
            a.checked_add(b).ok_or(AffineError::Overflow)?,
            self.den
                .checked_mul(other.den)
                .ok_or(AffineError::Overflow)?,
        )
    }

    /// Checked subtraction.
    pub fn sub(&self, other: &Rational) -> Result<Rational> {
        self.add(&other.neg())
    }

    /// Checked multiplication.
    pub fn mul(&self, other: &Rational) -> Result<Rational> {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(other.num / g2)
            .ok_or(AffineError::Overflow)?;
        let den = (self.den / g2)
            .checked_mul(other.den / g1)
            .ok_or(AffineError::Overflow)?;
        Rational::new(num, den)
    }

    /// Checked division.
    pub fn div(&self, other: &Rational) -> Result<Rational> {
        if other.num == 0 {
            return Err(AffineError::DivisionByZero);
        }
        self.mul(&Rational::new(other.den, other.num)?)
    }

    /// Negation (never overflows for reduced rationals except `i64::MIN`,
    /// which the constructor cannot produce from valid inputs).
    pub fn neg(&self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }

    /// Sign: -1, 0, or 1.
    pub fn signum(&self) -> i64 {
        self.num.signum()
    }

    /// Floor to an integer.
    pub fn floor(&self) -> i64 {
        self.num.div_euclid(self.den)
    }

    /// Ceiling to an integer.
    pub fn ceil(&self) -> i64 {
        -((-self.num).div_euclid(self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        // Use i128 to avoid overflow in the comparison itself.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl std::fmt::Display for Rational {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn normalization() {
        let r = Rational::new(4, -6).unwrap();
        assert_eq!((r.num(), r.den()), (-2, 3));
        assert_eq!(Rational::new(0, 5).unwrap(), Rational::ZERO);
        assert!(Rational::new(1, 0).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2).unwrap();
        let b = Rational::new(1, 3).unwrap();
        assert_eq!(a.add(&b).unwrap(), Rational::new(5, 6).unwrap());
        assert_eq!(a.sub(&b).unwrap(), Rational::new(1, 6).unwrap());
        assert_eq!(a.mul(&b).unwrap(), Rational::new(1, 6).unwrap());
        assert_eq!(a.div(&b).unwrap(), Rational::new(3, 2).unwrap());
        assert!(a.div(&Rational::ZERO).is_err());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).unwrap().floor(), 3);
        assert_eq!(Rational::new(7, 2).unwrap().ceil(), 4);
        assert_eq!(Rational::new(-7, 2).unwrap().floor(), -4);
        assert_eq!(Rational::new(-7, 2).unwrap().ceil(), -3);
        assert_eq!(Rational::from_int(5).floor(), 5);
        assert_eq!(Rational::from_int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(1, 2).unwrap();
        assert!(a < b);
        assert!(Rational::new(-1, 2).unwrap() < Rational::ZERO);
    }

    #[test]
    fn overflow_is_detected() {
        let big = Rational::from_int(i64::MAX);
        assert_eq!(big.add(&Rational::ONE), Err(AffineError::Overflow));
        assert_eq!(big.mul(&Rational::from_int(2)), Err(AffineError::Overflow));
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(
            an in -1000i64..1000, ad in 1i64..100,
            bn in -1000i64..1000, bd in 1i64..100,
        ) {
            let a = Rational::new(an, ad).unwrap();
            let b = Rational::new(bn, bd).unwrap();
            prop_assert_eq!(a.add(&b).unwrap().sub(&b).unwrap(), a);
        }

        #[test]
        fn prop_floor_le_ceil(n in -10_000i64..10_000, d in 1i64..100) {
            let r = Rational::new(n, d).unwrap();
            prop_assert!(r.floor() <= r.ceil());
            prop_assert!(Rational::from_int(r.floor()) <= r);
            prop_assert!(r <= Rational::from_int(r.ceil()));
            prop_assert!(r.ceil() - r.floor() <= 1);
        }

        #[test]
        fn prop_mul_div_roundtrip(
            an in -1000i64..1000, ad in 1i64..100,
            bn in 1i64..1000, bd in 1i64..100,
        ) {
            let a = Rational::new(an, ad).unwrap();
            let b = Rational::new(bn, bd).unwrap();
            prop_assert_eq!(a.mul(&b).unwrap().div(&b).unwrap(), a);
        }
    }
}
