//! Linear inequality systems and Fourier–Motzkin elimination.
//!
//! After reordering (§5.2) the compiler must express the transformed
//! iteration domain as a loop nest again — the paper does this with
//! Fourier–Motzkin elimination, producing bounds like
//! `j₄ ∈ [2, L+D-1)`, `j₃ ∈ [max(1, j₄-L+1), min(j₄, D))` (Table 5).
//! This module implements exactly that: a [`ConstraintSet`] of affine
//! inequalities, variable elimination, and per-loop bound extraction.

use crate::{gcd, gcd_slice, AffineError, IntMat, Result};

/// One affine inequality: `coeffs · x + constant >= 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Coefficients, one per variable.
    pub coeffs: Vec<i64>,
    /// Constant term.
    pub constant: i64,
}

impl Constraint {
    /// Creates `coeffs · x + constant >= 0`.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        Constraint { coeffs, constant }
    }

    /// Evaluates the left-hand side at a point.
    pub fn eval(&self, x: &[i64]) -> i64 {
        self.coeffs
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum::<i64>()
            + self.constant
    }

    /// True when the point satisfies the inequality.
    pub fn holds(&self, x: &[i64]) -> bool {
        self.eval(x) >= 0
    }

    /// Divides through by the gcd of all coefficients, tightening the
    /// constant with a floor (valid for integer solutions).
    fn normalize(&mut self) {
        let g = gcd(gcd_slice(&self.coeffs), 0).max(1);
        if g > 1 {
            for c in self.coeffs.iter_mut() {
                *c /= g;
            }
            self.constant = self.constant.div_euclid(g);
        }
    }

    /// True if no variable appears.
    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

/// A conjunction of affine inequalities over `nvars` integer variables.
///
/// Variable 0 is the *outermost* loop dimension, matching the paper's
/// convention that the iteration vector is processed in lexicographic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintSet {
    nvars: usize,
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An unconstrained set over `nvars` variables.
    pub fn unconstrained(nvars: usize) -> Self {
        ConstraintSet {
            nvars,
            constraints: Vec::new(),
        }
    }

    /// A rectangular domain: `los[i] <= x_i < his[i]`.
    pub fn from_box(los: &[i64], his: &[i64]) -> Result<Self> {
        if los.len() != his.len() {
            return Err(AffineError::DimMismatch(format!(
                "box bounds {} vs {}",
                los.len(),
                his.len()
            )));
        }
        let n = los.len();
        let mut set = ConstraintSet::unconstrained(n);
        for i in 0..n {
            let mut lo = vec![0i64; n];
            lo[i] = 1;
            set.push(Constraint::new(lo, -los[i])); // x_i - lo >= 0
            let mut hi = vec![0i64; n];
            hi[i] = -1;
            set.push(Constraint::new(hi, his[i] - 1)); // hi - 1 - x_i >= 0
        }
        Ok(set)
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The inequalities.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds an inequality (panics on wrong arity — programmer error).
    pub fn push(&mut self, mut c: Constraint) {
        assert_eq!(c.coeffs.len(), self.nvars, "constraint arity mismatch");
        c.normalize();
        if !self.constraints.contains(&c) {
            self.constraints.push(c);
        }
    }

    /// True when the point satisfies every inequality.
    pub fn contains(&self, x: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.holds(x))
    }

    /// Rewrites the set for reordered variables `j = T·x`
    /// (so `x = T⁻¹·j`): each `a·x + c >= 0` becomes `(a·T⁻¹)·j + c >= 0`.
    pub fn transform_by(&self, t: &IntMat) -> Result<ConstraintSet> {
        if t.rows() != self.nvars || t.cols() != self.nvars {
            return Err(AffineError::DimMismatch(format!(
                "transform {}x{} on {} vars",
                t.rows(),
                t.cols(),
                self.nvars
            )));
        }
        let t_inv = t.inverse_unimodular()?;
        let mut out = ConstraintSet::unconstrained(self.nvars);
        for c in &self.constraints {
            // Row vector times matrix: (a · T^{-1})_j = sum_i a_i * T^{-1}[i][j].
            let mut coeffs = vec![0i64; self.nvars];
            for (j, slot) in coeffs.iter_mut().enumerate() {
                let mut acc = 0i64;
                for (i, &a) in c.coeffs.iter().enumerate() {
                    acc = acc
                        .checked_add(
                            a.checked_mul(t_inv.get(i, j))
                                .ok_or(AffineError::Overflow)?,
                        )
                        .ok_or(AffineError::Overflow)?;
                }
                *slot = acc;
            }
            out.push(Constraint::new(coeffs, c.constant));
        }
        Ok(out)
    }

    /// Eliminates variable `var` by Fourier–Motzkin, returning a set over
    /// the same variable indexing in which `var` no longer appears.
    pub fn eliminate(&self, var: usize) -> Result<ConstraintSet> {
        fourier_motzkin(self, var)
    }

    /// True when the system has no integer solutions detectable by FM over
    /// the rationals plus constant-constraint checking. (FM is exact for
    /// rational feasibility; for the unit-coefficient systems the compiler
    /// produces it is exact for integer feasibility too.)
    pub fn is_empty(&self) -> Result<bool> {
        let mut cur = self.clone();
        for v in 0..self.nvars {
            cur = cur.eliminate(v)?;
        }
        Ok(cur.constraints.iter().any(|c| c.constant < 0))
    }

    /// Extracts loop bounds for every variable, outermost first: the bounds
    /// of variable `i` only reference variables `0..i`.
    ///
    /// This is the FM-based bound regeneration of §5.2 (producing the Table
    /// 5 ranges like `[max(1, j4-L+1), min(j4, D))`).
    pub fn loop_bounds(&self) -> Result<Vec<LoopBounds>> {
        let mut out: Vec<LoopBounds> = Vec::with_capacity(self.nvars);
        let mut cur = self.clone();
        // Innermost-first: read off bounds of var v from the system where
        // variables v+1.. have already been eliminated.
        for v in (0..self.nvars).rev() {
            let mut lowers = Vec::new();
            let mut uppers = Vec::new();
            for c in &cur.constraints {
                let a = c.coeffs[v];
                if a == 0 {
                    continue;
                }
                // a*x_v + rest + const >= 0.
                let mut rest = c.coeffs.clone();
                rest[v] = 0;
                if a > 0 {
                    // x_v >= ceil((-rest - const) / a).
                    lowers.push(BoundExpr {
                        coeffs: rest.iter().map(|&x| -x).collect(),
                        constant: -c.constant,
                        divisor: a,
                    });
                } else {
                    // x_v <= floor((rest + const) / (-a)); exclusive +1.
                    uppers.push(BoundExpr {
                        coeffs: rest.clone(),
                        constant: c.constant,
                        divisor: -a,
                    });
                }
            }
            if lowers.is_empty() || uppers.is_empty() {
                return Err(AffineError::Invalid(format!(
                    "variable {v} is unbounded; cannot form a loop nest"
                )));
            }
            out.push(LoopBounds {
                var: v,
                lowers,
                uppers,
            });
            cur = cur.eliminate(v)?;
        }
        // Any leftover constant contradiction means an empty domain; the
        // caller observes it as an empty loop range, which is fine.
        out.reverse();
        Ok(out)
    }

    /// Enumerates every integer point in lexicographic order. Intended for
    /// tests and small domains.
    pub fn enumerate(&self) -> Result<Vec<Vec<i64>>> {
        let bounds = self.loop_bounds()?;
        let mut points = Vec::new();
        let mut current = vec![0i64; self.nvars];
        self.enumerate_rec(&bounds, 0, &mut current, &mut points);
        Ok(points)
    }

    fn enumerate_rec(
        &self,
        bounds: &[LoopBounds],
        depth: usize,
        current: &mut Vec<i64>,
        points: &mut Vec<Vec<i64>>,
    ) {
        if depth == self.nvars {
            if self.contains(current) {
                points.push(current.clone());
            }
            return;
        }
        let lb = &bounds[depth];
        let lo = lb.eval_lower(current);
        let hi = lb.eval_upper_exclusive(current);
        for v in lo..hi {
            current[depth] = v;
            self.enumerate_rec(bounds, depth + 1, current, points);
        }
        current[depth] = 0;
    }
}

/// One affine bound expression: `(coeffs · x + constant) / divisor`
/// (`divisor > 0`; rounding direction depends on bound kind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundExpr {
    /// Coefficients over the *other* variables.
    pub coeffs: Vec<i64>,
    /// Constant term.
    pub constant: i64,
    /// Positive divisor.
    pub divisor: i64,
}

impl BoundExpr {
    fn eval_raw(&self, x: &[i64]) -> i64 {
        self.coeffs
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum::<i64>()
            + self.constant
    }

    /// Ceiling evaluation (for lower bounds).
    pub fn eval_ceil(&self, x: &[i64]) -> i64 {
        let n = self.eval_raw(x);
        -((-n).div_euclid(self.divisor))
    }

    /// Floor evaluation (for upper bounds).
    pub fn eval_floor(&self, x: &[i64]) -> i64 {
        self.eval_raw(x).div_euclid(self.divisor)
    }
}

/// Loop bounds for one variable: `max(lowers) <= x < min(uppers)+1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBounds {
    /// The variable index.
    pub var: usize,
    /// Lower-bound expressions (loop lower bound is their max).
    pub lowers: Vec<BoundExpr>,
    /// Upper-bound expressions, inclusive (loop exclusive bound is their
    /// min, plus one).
    pub uppers: Vec<BoundExpr>,
}

impl LoopBounds {
    /// The tight lower bound at a partially-fixed iteration point (only the
    /// entries for outer variables are read).
    pub fn eval_lower(&self, x: &[i64]) -> i64 {
        self.lowers
            .iter()
            .map(|b| b.eval_ceil(x))
            .max()
            .expect("loop_bounds guarantees at least one lower bound")
    }

    /// The tight *exclusive* upper bound at a partially-fixed point.
    pub fn eval_upper_exclusive(&self, x: &[i64]) -> i64 {
        self.uppers
            .iter()
            .map(|b| b.eval_floor(x))
            .min()
            .expect("loop_bounds guarantees at least one upper bound")
            + 1
    }
}

/// Fourier–Motzkin elimination of one variable: every pair of a lower bound
/// (`a > 0`) and an upper bound (`a < 0`) on `var` combines into a new
/// inequality without `var`; constraints not involving `var` pass through.
pub fn fourier_motzkin(set: &ConstraintSet, var: usize) -> Result<ConstraintSet> {
    if var >= set.nvars {
        return Err(AffineError::DimMismatch(format!(
            "eliminate var {var} of {}",
            set.nvars
        )));
    }
    let mut lowers = Vec::new();
    let mut uppers = Vec::new();
    let mut rest = Vec::new();
    for c in &set.constraints {
        match c.coeffs[var].signum() {
            1 => lowers.push(c.clone()),
            -1 => uppers.push(c.clone()),
            _ => rest.push(c.clone()),
        }
    }
    let mut out = ConstraintSet::unconstrained(set.nvars);
    for c in rest {
        out.push(c);
    }
    for lo in &lowers {
        for up in &uppers {
            let a = lo.coeffs[var]; // > 0
            let b = -up.coeffs[var]; // > 0
                                     // b*lo + a*up eliminates var.
            let mut coeffs = vec![0i64; set.nvars];
            for (i, slot) in coeffs.iter_mut().enumerate() {
                let t1 = b.checked_mul(lo.coeffs[i]).ok_or(AffineError::Overflow)?;
                let t2 = a.checked_mul(up.coeffs[i]).ok_or(AffineError::Overflow)?;
                *slot = t1.checked_add(t2).ok_or(AffineError::Overflow)?;
            }
            debug_assert_eq!(coeffs[var], 0);
            let constant = b
                .checked_mul(lo.constant)
                .and_then(|x| a.checked_mul(up.constant).map(|y| x + y))
                .ok_or(AffineError::Overflow)?;
            let c = Constraint::new(coeffs, constant);
            if c.is_constant() && c.constant >= 0 {
                continue; // Trivially true.
            }
            out.push(c);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn box_contains() {
        let s = ConstraintSet::from_box(&[0, 1], &[3, 4]).unwrap();
        assert!(s.contains(&[0, 1]));
        assert!(s.contains(&[2, 3]));
        assert!(!s.contains(&[3, 1]));
        assert!(!s.contains(&[0, 0]));
    }

    #[test]
    fn eliminate_keeps_projection() {
        // 0 <= x < 4, 0 <= y < 4, x + y <= 3  (i.e. 3 - x - y >= 0).
        let mut s = ConstraintSet::from_box(&[0, 0], &[4, 4]).unwrap();
        s.push(Constraint::new(vec![-1, -1], 3));
        let no_y = s.eliminate(1).unwrap();
        // x can still be 0..=3 (for any x<=3 there is a valid y=0).
        for x in 0..4 {
            assert!(no_y.contains(&[x, 0]), "x={x} should remain feasible");
        }
        // The eliminated system should not mention y.
        for c in no_y.constraints() {
            assert_eq!(c.coeffs[1], 0);
        }
    }

    #[test]
    fn empty_system_detected() {
        let mut s = ConstraintSet::from_box(&[0], &[5]).unwrap();
        s.push(Constraint::new(vec![1], -10)); // x >= 10: contradiction.
        assert!(s.is_empty().unwrap());
        let ok = ConstraintSet::from_box(&[0], &[5]).unwrap();
        assert!(!ok.is_empty().unwrap());
    }

    #[test]
    fn loop_bounds_of_box() {
        let s = ConstraintSet::from_box(&[2, 0], &[5, 7]).unwrap();
        let b = s.loop_bounds().unwrap();
        assert_eq!(b[0].eval_lower(&[0, 0]), 2);
        assert_eq!(b[0].eval_upper_exclusive(&[0, 0]), 5);
        assert_eq!(b[1].eval_lower(&[3, 0]), 0);
        assert_eq!(b[1].eval_upper_exclusive(&[3, 0]), 7);
    }

    #[test]
    fn loop_bounds_of_skewed_wavefront() {
        // The paper's running-example wavefront: after skewing, the outer
        // variable w = d + l with 1 <= d < D, 1 <= l < L, and the inner
        // variable d has bounds max(1, w-L+1) <= d < min(w, D) — compare
        // Table 5's range constraints.
        let (big_d, big_l) = (3i64, 4i64);
        // Variables: (w, d); original l = w - d.
        let mut s = ConstraintSet::unconstrained(2);
        s.push(Constraint::new(vec![0, 1], -1)); // d >= 1
        s.push(Constraint::new(vec![0, -1], big_d - 1)); // d <= D-1
        s.push(Constraint::new(vec![1, -1], -1)); // l = w-d >= 1
        s.push(Constraint::new(vec![-1, 1], big_l - 1)); // l <= L-1
        let b = s.loop_bounds().unwrap();
        // w ranges over [2, D-1+L-1] = [2, D+L-2] inclusive.
        assert_eq!(b[0].eval_lower(&[0, 0]), 2);
        assert_eq!(b[0].eval_upper_exclusive(&[0, 0]), big_d + big_l - 1);
        // For w = 2: d in [1, min(2-1, D-1)] = [1, 1].
        assert_eq!(b[1].eval_lower(&[2, 0]), 1);
        assert_eq!(b[1].eval_upper_exclusive(&[2, 0]), 2);
        // For w = 5 (= D+L-2): d in [max(1, 5-L+1), D-1] = [2, 2].
        assert_eq!(b[1].eval_lower(&[5, 0]), 2);
        assert_eq!(b[1].eval_upper_exclusive(&[5, 0]), 3);
    }

    #[test]
    fn enumerate_triangle() {
        let mut s = ConstraintSet::from_box(&[0, 0], &[3, 3]).unwrap();
        s.push(Constraint::new(vec![-1, -1], 2)); // x + y <= 2.
        let pts = s.enumerate().unwrap();
        assert_eq!(pts.len(), 6); // (0,0)(0,1)(0,2)(1,0)(1,1)(2,0).
        assert!(pts.contains(&vec![2, 0]));
        assert!(!pts.contains(&vec![2, 1]));
        // Lexicographic order.
        let mut sorted = pts.clone();
        sorted.sort();
        assert_eq!(pts, sorted);
    }

    #[test]
    fn transform_preserves_membership() {
        let s = ConstraintSet::from_box(&[0, 0], &[4, 5]).unwrap();
        // Skew: j = (x + y, y).
        let t = IntMat::from_rows(&[vec![1, 1], vec![0, 1]]).unwrap();
        let st = s.transform_by(&t).unwrap();
        for x in 0..4 {
            for y in 0..5 {
                let j = t.matvec(&[x, y]).unwrap();
                assert!(st.contains(&j), "({x},{y}) -> {j:?} must stay inside");
            }
        }
        assert!(!st.contains(&[100, 0]));
    }

    #[test]
    fn unbounded_variable_is_an_error() {
        let mut s = ConstraintSet::unconstrained(1);
        s.push(Constraint::new(vec![1], 0)); // x >= 0 but no upper bound.
        assert!(s.loop_bounds().is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_elimination_preserves_feasibility(
            his in proptest::collection::vec(1i64..5, 2..4),
            extra_a in -2i64..3, extra_b in -2i64..3, extra_c in 0i64..6,
        ) {
            let n = his.len();
            let los = vec![0i64; n];
            let mut s = ConstraintSet::from_box(&los, &his).unwrap();
            let mut coeffs = vec![0i64; n];
            coeffs[0] = extra_a;
            coeffs[n - 1] = extra_b;
            s.push(Constraint::new(coeffs, extra_c));
            // Every feasible point must remain feasible after eliminating
            // the last variable (projection property of FM).
            let elim = s.eliminate(n - 1).unwrap();
            let mut idx = vec![0i64; n];
            loop {
                if s.contains(&idx) {
                    let mut proj = idx.clone();
                    proj[n - 1] = 0;
                    prop_assert!(elim.contains(&proj));
                }
                // Odometer increment over the box.
                let mut k = n;
                loop {
                    if k == 0 { break; }
                    k -= 1;
                    idx[k] += 1;
                    if idx[k] < his[k] { break; }
                    idx[k] = 0;
                    if k == 0 { k = usize::MAX; break; }
                }
                if k == usize::MAX || (k == 0 && idx.iter().all(|&v| v == 0)) {
                    break;
                }
            }
        }

        #[test]
        fn prop_enumerate_matches_contains(
            his in proptest::collection::vec(1i64..4, 1..4),
        ) {
            let los = vec![0i64; his.len()];
            let s = ConstraintSet::from_box(&los, &his).unwrap();
            let pts = s.enumerate().unwrap();
            let expected: i64 = his.iter().product();
            prop_assert_eq!(pts.len() as i64, expected);
            for p in &pts {
                prop_assert!(s.contains(p));
            }
        }
    }
}
