//! Integer matrices: products, exact determinants, unimodular inverses,
//! null-space bases, and unimodular completion of a schedule row.

use crate::{egcd, gcd_slice, AffineError, Rational, Result};

/// A dense integer matrix, row-major.
///
/// Sizes here are tiny (block nodes have at most ~6 dimensions), so all
/// algorithms favour exactness and clarity over asymptotics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IntMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = IntMat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1;
        }
        m
    }

    /// Builds a matrix from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<i64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(AffineError::DimMismatch(format!(
                    "row length {} != {}",
                    row.len(),
                    c
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(IntMat {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> i64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    pub fn set(&mut self, r: usize, c: usize, v: i64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[i64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` as a vector.
    pub fn col(&self, c: usize) -> Vec<i64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> IntMat {
        let mut t = IntMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Checked matrix product.
    pub fn matmul(&self, other: &IntMat) -> Result<IntMat> {
        if self.cols != other.rows {
            return Err(AffineError::DimMismatch(format!(
                "matmul {}x{} @ {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = IntMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc = 0i64;
                for k in 0..self.cols {
                    let term = self
                        .get(i, k)
                        .checked_mul(other.get(k, j))
                        .ok_or(AffineError::Overflow)?;
                    acc = acc.checked_add(term).ok_or(AffineError::Overflow)?;
                }
                out.set(i, j, acc);
            }
        }
        Ok(out)
    }

    /// Checked matrix–vector product.
    pub fn matvec(&self, v: &[i64]) -> Result<Vec<i64>> {
        if self.cols != v.len() {
            return Err(AffineError::DimMismatch(format!(
                "matvec {}x{} @ {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![0i64; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0i64;
            for (k, &x) in v.iter().enumerate() {
                let term = self.get(i, k).checked_mul(x).ok_or(AffineError::Overflow)?;
                acc = acc.checked_add(term).ok_or(AffineError::Overflow)?;
            }
            *slot = acc;
        }
        Ok(out)
    }

    /// Exact determinant via the Bareiss fraction-free algorithm.
    pub fn det(&self) -> Result<i64> {
        if self.rows != self.cols {
            return Err(AffineError::DimMismatch(format!(
                "det of {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        if n == 0 {
            return Ok(1);
        }
        let mut a: Vec<Vec<i128>> = (0..n)
            .map(|r| self.row(r).iter().map(|&x| x as i128).collect())
            .collect();
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n - 1 {
            if a[k][k] == 0 {
                // Pivot: find a row below with a nonzero entry.
                let swap = (k + 1..n).find(|&r| a[r][k] != 0);
                match swap {
                    Some(r) => {
                        a.swap(k, r);
                        sign = -sign;
                    }
                    None => return Ok(0),
                }
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let num = a[i][j]
                        .checked_mul(a[k][k])
                        .and_then(|x| a[i][k].checked_mul(a[k][j]).map(|y| x - y))
                        .ok_or(AffineError::Overflow)?;
                    a[i][j] = num / prev;
                }
                a[i][k] = 0;
            }
            prev = a[k][k];
        }
        let d = sign * a[n - 1][n - 1];
        i64::try_from(d).map_err(|_| AffineError::Overflow)
    }

    /// True iff square with determinant ±1.
    pub fn is_unimodular(&self) -> bool {
        self.rows == self.cols && matches!(self.det(), Ok(1) | Ok(-1))
    }

    /// Inverse of a unimodular matrix (which is again integral).
    pub fn inverse_unimodular(&self) -> Result<IntMat> {
        if self.rows != self.cols {
            return Err(AffineError::DimMismatch(format!(
                "inverse of {}x{}",
                self.rows, self.cols
            )));
        }
        let n = self.rows;
        // Gauss-Jordan over rationals on [A | I].
        let mut a: Vec<Vec<Rational>> = (0..n)
            .map(|r| {
                let mut row: Vec<Rational> =
                    self.row(r).iter().map(|&x| Rational::from_int(x)).collect();
                for j in 0..n {
                    row.push(if j == r {
                        Rational::ONE
                    } else {
                        Rational::ZERO
                    });
                }
                row
            })
            .collect();
        for col in 0..n {
            let pivot = (col..n)
                .find(|&r| !a[r][col].is_zero())
                .ok_or(AffineError::Singular)?;
            a.swap(col, pivot);
            let p = a[col][col];
            for x in a[col].iter_mut() {
                *x = x.div(&p)?;
            }
            for r in 0..n {
                if r != col && !a[r][col].is_zero() {
                    let f = a[r][col];
                    let pivot_row = a[col].clone();
                    for (x, p) in a[r].iter_mut().zip(&pivot_row) {
                        let delta = f.mul(p)?;
                        *x = x.sub(&delta)?;
                    }
                }
            }
        }
        let mut inv = IntMat::zeros(n, n);
        for (r, row) in a.iter().enumerate().take(n) {
            for (c, x) in row.iter().skip(n).enumerate() {
                let v = x.to_int().ok_or(AffineError::Invalid(
                    "matrix is not unimodular: inverse is not integral".into(),
                ))?;
                inv.set(r, c, v);
            }
        }
        Ok(inv)
    }

    /// Rank over the rationals.
    pub fn rank(&self) -> usize {
        let (reduced, pivots) = self.row_reduce();
        let _ = reduced;
        pivots.len()
    }

    /// Integer basis of the (right) null space: all `v` with `A v = 0`.
    ///
    /// This is the paper's data-reuse detector (§5.2): a basis vector of the
    /// null space of an access matrix names block-node dimensions along which
    /// the accessed data does not change.
    pub fn null_space(&self) -> Vec<Vec<i64>> {
        let (reduced, pivots) = self.row_reduce();
        let n = self.cols;
        let pivot_cols: Vec<usize> = pivots.iter().map(|&(_, c)| c).collect();
        let free_cols: Vec<usize> = (0..n).filter(|c| !pivot_cols.contains(c)).collect();
        let mut basis = Vec::new();
        for &fc in &free_cols {
            // Rational solution with x[fc] = 1, other free vars = 0.
            let mut x = vec![Rational::ZERO; n];
            x[fc] = Rational::ONE;
            for &(pr, pc) in pivots.iter().rev() {
                // Row pr: x[pc] + sum_{c > pc} reduced[pr][c] * x[c] = 0.
                let mut acc = Rational::ZERO;
                for c in pc + 1..n {
                    if !reduced[pr][c].is_zero() {
                        acc = acc
                            .add(&reduced[pr][c].mul(&x[c]).expect("small values"))
                            .expect("small values");
                    }
                }
                x[pc] = acc.neg();
            }
            // Scale to integers.
            let lcm_den = x
                .iter()
                .fold(1i64, |l, r| l / crate::gcd(l, r.den()).max(1) * r.den());
            let mut iv: Vec<i64> = x.iter().map(|r| r.num() * (lcm_den / r.den())).collect();
            let g = gcd_slice(&iv).max(1);
            for v in iv.iter_mut() {
                *v /= g;
            }
            // Normalize sign: first nonzero positive.
            if let Some(first) = iv.iter().find(|&&v| v != 0) {
                if *first < 0 {
                    for v in iv.iter_mut() {
                        *v = -*v;
                    }
                }
            }
            basis.push(iv);
        }
        basis
    }

    /// Reduced row echelon form over rationals; returns (matrix, pivot
    /// (row, col) list).
    fn row_reduce(&self) -> (Vec<Vec<Rational>>, Vec<(usize, usize)>) {
        let mut a: Vec<Vec<Rational>> = (0..self.rows)
            .map(|r| self.row(r).iter().map(|&x| Rational::from_int(x)).collect())
            .collect();
        let mut pivots = Vec::new();
        let mut row = 0usize;
        for col in 0..self.cols {
            if row >= self.rows {
                break;
            }
            let Some(p) = (row..self.rows).find(|&r| !a[r][col].is_zero()) else {
                continue;
            };
            a.swap(row, p);
            let pv = a[row][col];
            for x in a[row].iter_mut() {
                *x = x.div(&pv).expect("pivot nonzero");
            }
            for r in 0..self.rows {
                if r != row && !a[r][col].is_zero() {
                    let f = a[r][col];
                    let pivot_row = a[row].clone();
                    for (x, p) in a[r].iter_mut().zip(&pivot_row) {
                        let delta = f.mul(p).expect("small values");
                        *x = x.sub(&delta).expect("small values");
                    }
                }
            }
            pivots.push((row, col));
            row += 1;
        }
        (a, pivots)
    }

    /// Completes a primitive row vector to a full unimodular matrix whose
    /// *first row* is that vector (§5.2: the hyperplane schedule occupies the
    /// first row of the transformation matrix, the remaining rows are free).
    ///
    /// Algorithm: build a unimodular column-operation matrix `U` such that
    /// `a · U = e₁ᵀ`; then `T = U⁻¹` has first row `a`.
    pub fn complete_unimodular(first_row: &[i64]) -> Result<IntMat> {
        let n = first_row.len();
        if n == 0 {
            return Err(AffineError::Invalid("empty row".into()));
        }
        if gcd_slice(first_row) != 1 {
            return Err(AffineError::NotPrimitive);
        }
        let mut a = first_row.to_vec();
        // Accumulate U^{-1} directly: start from I and apply the *inverse*
        // of each elementary column operation as a row operation on the left.
        let mut t = IntMat::identity(n);
        // Reduce a to e1 by pairwise gcd steps between position 0 and k.
        for k in 1..n {
            if a[k] == 0 {
                continue;
            }
            let (g, x, y) = egcd(a[0], a[k]);
            let (a0, ak) = (a[0], a[k]);
            // Column op C on columns (0, k):
            //   col0' = x*col0 + y*colk,  colk' = -(ak/g)*col0 + (a0/g)*colk.
            // Then (a·C)[0] = g, (a·C)[k] = 0. det(C) = x*(a0/g) + y*(ak/g) = 1.
            // T = U^{-1} accumulates C^{-1} on the left: row ops
            //   row0' = (a0/g)*row0 + (ak/g)*rowk,  rowk' = -y*row0 + x*rowk.
            let (p, q) = (a0 / g, ak / g);
            for c in 0..n {
                let r0 = t.get(0, c);
                let rk = t.get(k, c);
                let new0 = p
                    .checked_mul(r0)
                    .and_then(|u| q.checked_mul(rk).map(|v| u + v))
                    .ok_or(AffineError::Overflow)?;
                let newk = x
                    .checked_mul(rk)
                    .and_then(|u| y.checked_mul(r0).map(|v| u - v))
                    .ok_or(AffineError::Overflow)?;
                t.set(0, c, new0);
                t.set(k, c, newk);
            }
            a[0] = g;
            a[k] = 0;
        }
        debug_assert_eq!(a[0].abs(), 1);
        if a[0] == -1 {
            // Flip the sign of the first row (and keep det ±1).
            for c in 0..n {
                let v = t.get(0, c);
                t.set(0, c, -v);
            }
        }
        debug_assert_eq!(t.row(0), first_row);
        Ok(t)
    }
}

impl std::fmt::Display for IntMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn product_and_identity() {
        let a = IntMat::from_rows(&[vec![1, 2], vec![3, 4]]).unwrap();
        let i = IntMat::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        let b = IntMat::from_rows(&[vec![0, 1], vec![1, 0]]).unwrap();
        let ab = a.matmul(&b).unwrap();
        assert_eq!(ab, IntMat::from_rows(&[vec![2, 1], vec![4, 3]]).unwrap());
        assert!(a.matmul(&IntMat::zeros(3, 3)).is_err());
    }

    #[test]
    fn determinants() {
        let a = IntMat::from_rows(&[vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(a.det().unwrap(), -2);
        assert_eq!(IntMat::identity(4).det().unwrap(), 1);
        assert_eq!(IntMat::zeros(3, 3).det().unwrap(), 0);
        // The paper's Figure 6 transformation matrix has det ±1.
        let t = IntMat::from_rows(&[
            vec![0, 1, 1, 0],
            vec![0, 1, 0, 0],
            vec![1, 0, 0, 0],
            vec![0, 0, 0, 1],
        ])
        .unwrap();
        assert!(t.is_unimodular());
    }

    #[test]
    fn unimodular_inverse_roundtrip() {
        let t = IntMat::from_rows(&[
            vec![0, 1, 1, 0],
            vec![0, 1, 0, 0],
            vec![1, 0, 0, 0],
            vec![0, 0, 0, 1],
        ])
        .unwrap();
        let inv = t.inverse_unimodular().unwrap();
        assert_eq!(t.matmul(&inv).unwrap(), IntMat::identity(4));
        assert_eq!(inv.matmul(&t).unwrap(), IntMat::identity(4));
    }

    #[test]
    fn inverse_rejects_singular() {
        let s = IntMat::from_rows(&[vec![1, 2], vec![2, 4]]).unwrap();
        assert!(s.inverse_unimodular().is_err());
    }

    #[test]
    fn null_space_of_projection() {
        // M = [1 0 0; 0 1 0] has null space spanned by e3.
        let m = IntMat::from_rows(&[vec![1, 0, 0], vec![0, 1, 0]]).unwrap();
        assert_eq!(m.null_space(), vec![vec![0, 0, 1]]);
        // Paper example: e14's access matrix [0 0 1 0] over a 4-dim block
        // node has null space spanned by e1, e2, e4 — dims carrying reuse.
        let m14 = IntMat::from_rows(&[vec![0, 0, 1, 0]]).unwrap();
        let ns = m14.null_space();
        assert_eq!(ns.len(), 3);
        assert!(ns.contains(&vec![1, 0, 0, 0]));
        assert!(ns.contains(&vec![0, 1, 0, 0]));
        assert!(ns.contains(&vec![0, 0, 0, 1]));
    }

    #[test]
    fn null_space_of_full_rank_is_empty() {
        let m = IntMat::identity(3);
        assert!(m.null_space().is_empty());
    }

    #[test]
    fn null_space_with_rational_dependencies() {
        // x + 2y - z = 0, basis should span a 2-dim space.
        let m = IntMat::from_rows(&[vec![1, 2, -1]]).unwrap();
        let ns = m.null_space();
        assert_eq!(ns.len(), 2);
        for v in &ns {
            assert_eq!(v[0] + 2 * v[1] - v[2], 0);
        }
    }

    #[test]
    fn completion_simple_hyperplane() {
        // The running example's hyperplane t4 + t3 over 4 dims.
        let t = IntMat::complete_unimodular(&[0, 1, 1, 0]).unwrap();
        assert_eq!(t.row(0), &[0, 1, 1, 0]);
        assert!(t.is_unimodular());
    }

    #[test]
    fn completion_rejects_non_primitive() {
        assert_eq!(
            IntMat::complete_unimodular(&[2, 4]),
            Err(AffineError::NotPrimitive)
        );
    }

    #[test]
    fn rank_works() {
        let m = IntMat::from_rows(&[vec![1, 2, 3], vec![2, 4, 6], vec![0, 1, 1]]).unwrap();
        assert_eq!(m.rank(), 2);
        assert_eq!(IntMat::identity(5).rank(), 5);
        assert_eq!(IntMat::zeros(2, 3).rank(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_completion_is_unimodular(
            v in proptest::collection::vec(-6i64..7, 2..5)
        ) {
            prop_assume!(crate::gcd_slice(&v) == 1);
            let t = IntMat::complete_unimodular(&v).unwrap();
            prop_assert_eq!(t.row(0), &v[..]);
            prop_assert!(t.is_unimodular());
            // And the inverse really inverts.
            let inv = t.inverse_unimodular().unwrap();
            prop_assert_eq!(t.matmul(&inv).unwrap(), IntMat::identity(v.len()));
        }

        #[test]
        fn prop_null_space_vectors_annihilate(
            rows in 1usize..4, cols in 1usize..5, seed in 0i64..1000
        ) {
            // Deterministic small matrix from the seed.
            let mut m = IntMat::zeros(rows, cols);
            let mut s = seed;
            for r in 0..rows {
                for c in 0..cols {
                    s = (s * 1103515245 + 12345) % 97;
                    m.set(r, c, (s % 5) - 2);
                }
            }
            for v in m.null_space() {
                let prod = m.matvec(&v).unwrap();
                prop_assert!(prod.iter().all(|&x| x == 0));
                prop_assert!(v.iter().any(|&x| x != 0));
            }
            // Rank-nullity.
            prop_assert_eq!(m.rank() + m.null_space().len(), cols);
        }

        #[test]
        fn prop_det_of_product(
            seed in 0i64..500
        ) {
            let mut s = seed;
            let mut next = || { s = (s * 48271 + 11) % 101; (s % 5) - 2 };
            let a = IntMat::from_rows(&[
                vec![next(), next(), next()],
                vec![next(), next(), next()],
                vec![next(), next(), next()],
            ]).unwrap();
            let b = IntMat::from_rows(&[
                vec![next(), next(), next()],
                vec![next(), next(), next()],
                vec![next(), next(), next()],
            ]).unwrap();
            let lhs = a.matmul(&b).unwrap().det().unwrap();
            let rhs = a.det().unwrap() * b.det().unwrap();
            prop_assert_eq!(lhs, rhs);
        }
    }
}
