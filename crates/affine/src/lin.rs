//! Degree-1 parametric sizes: `c0 + c1·L` over one symbolic extent `L`.
//!
//! The shape-polymorphic memory planner (`ft_passes::poly`) needs exact
//! arithmetic over sizes that are linear in the designated outer extent:
//! a batched buffer's length is `leaf_len·inner_dims·L`, a shared weight
//! stack's is a constant, and first-fit offsets are sums of both. [`Lin`]
//! is that one-parameter affine form, with the comparison the planner's
//! soundness argument rests on: [`Lin::dominates`] is componentwise `>=`,
//! which implies `eval(l) >= other.eval(l)` for **every** `l`, so a free
//! range that dominates a request fits at all extents simultaneously.
//! (The converse is not true — `dominates` is conservative — which only
//! costs reuse opportunities, never correctness.)
//!
//! Arithmetic is overflow-checked like the rest of this crate: sizes are
//! element counts, and a symbolic plan must fail loudly at plan time
//! rather than wrap at dispatch.

use crate::{AffineError, Result};

/// A size/offset linear in one symbolic extent: `value(L) = c0 + c1·L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Lin {
    /// Constant term (elements).
    pub c0: usize,
    /// Coefficient of the symbolic extent (elements per unit of `L`).
    pub c1: usize,
}

impl Lin {
    /// The zero size.
    pub const ZERO: Lin = Lin { c0: 0, c1: 0 };

    /// An extent-independent size.
    pub const fn constant(c0: usize) -> Lin {
        Lin { c0, c1: 0 }
    }

    /// A size scaling 1:1 with the extent, times `c1`.
    pub const fn scaled(c1: usize) -> Lin {
        Lin { c0: 0, c1 }
    }

    /// The concrete value at extent `l`.
    pub fn eval(&self, l: usize) -> usize {
        self.c0 + self.c1 * l
    }

    /// Checked sum.
    pub fn add(&self, other: Lin) -> Result<Lin> {
        Ok(Lin {
            c0: self.c0.checked_add(other.c0).ok_or(AffineError::Overflow)?,
            c1: self.c1.checked_add(other.c1).ok_or(AffineError::Overflow)?,
        })
    }

    /// Checked difference; errors unless `self.dominates(other)` (the
    /// result must stay a valid size at every extent).
    pub fn sub(&self, other: Lin) -> Result<Lin> {
        if !self.dominates(&other) {
            return Err(AffineError::Invalid(format!(
                "{self} - {other} is negative at some extent"
            )));
        }
        Ok(Lin {
            c0: self.c0 - other.c0,
            c1: self.c1 - other.c1,
        })
    }

    /// Checked scale by a constant.
    pub fn scale(&self, k: usize) -> Result<Lin> {
        Ok(Lin {
            c0: self.c0.checked_mul(k).ok_or(AffineError::Overflow)?,
            c1: self.c1.checked_mul(k).ok_or(AffineError::Overflow)?,
        })
    }

    /// Componentwise `>=`: `self.eval(l) >= other.eval(l)` for every
    /// `l >= 0`. Conservative (e.g. `8 + 0·L` vs `0 + 1·L` is unordered),
    /// which is exactly what all-extents-sound first-fit needs.
    pub fn dominates(&self, other: &Lin) -> bool {
        self.c0 >= other.c0 && self.c1 >= other.c1
    }

    /// True when the size is zero at every extent.
    pub fn is_zero(&self) -> bool {
        *self == Lin::ZERO
    }
}

impl std::fmt::Display for Lin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.c0, self.c1) {
            (c0, 0) => write!(f, "{c0}"),
            (0, c1) => write!(f, "{c1}·L"),
            (c0, c1) => write!(f, "{c0} + {c1}·L"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_and_arithmetic() {
        let a = Lin { c0: 3, c1: 2 };
        assert_eq!(a.eval(0), 3);
        assert_eq!(a.eval(10), 23);
        assert_eq!(a.add(Lin::constant(4)).unwrap(), Lin { c0: 7, c1: 2 });
        assert_eq!(a.scale(3).unwrap(), Lin { c0: 9, c1: 6 });
        assert_eq!(Lin::scaled(5).eval(4), 20);
        assert!(Lin::ZERO.is_zero());
    }

    #[test]
    fn sub_requires_domination() {
        let a = Lin { c0: 3, c1: 2 };
        assert_eq!(a.sub(Lin { c0: 1, c1: 2 }).unwrap(), Lin { c0: 2, c1: 0 });
        // 3 + 2L vs 0 + 3L: larger at L=0, smaller at L=3 — unordered.
        assert!(a.sub(Lin { c0: 0, c1: 3 }).is_err());
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        let big = Lin::constant(usize::MAX);
        assert_eq!(big.add(Lin::constant(1)), Err(AffineError::Overflow));
        assert_eq!(big.scale(2), Err(AffineError::Overflow));
    }

    proptest! {
        #[test]
        fn prop_dominates_implies_pointwise_ge(
            a0 in 0usize..1000, a1 in 0usize..1000,
            b0 in 0usize..1000, b1 in 0usize..1000,
            l in 0usize..10_000,
        ) {
            let a = Lin { c0: a0, c1: a1 };
            let b = Lin { c0: b0, c1: b1 };
            if a.dominates(&b) {
                prop_assert!(a.eval(l) >= b.eval(l));
            }
        }

        #[test]
        fn prop_eval_is_homomorphic(
            a0 in 0usize..1000, a1 in 0usize..1000,
            b0 in 0usize..1000, b1 in 0usize..1000,
            l in 0usize..10_000,
        ) {
            let a = Lin { c0: a0, c1: a1 };
            let b = Lin { c0: b0, c1: b1 };
            prop_assert_eq!(a.add(b).unwrap().eval(l), a.eval(l) + b.eval(l));
            prop_assert_eq!(a.scale(3).unwrap().eval(l), 3 * a.eval(l));
        }
    }
}
