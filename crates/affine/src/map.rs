//! Quasi-affine access maps `i = M·t + o` (paper §4.4).

use crate::{AffineError, IntMat, Result};

/// An affine map from a `d`-dimensional iteration space to an
/// `m`-dimensional data space: `i = M·t + o`.
///
/// Access maps annotate every dataflow edge between a block node and a
/// buffer node in the ETDG. They are the compiler's *only* description of
/// data movement — materialization is deferred until the code emitter walks
/// the scheduled graph (§5.3).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineMap {
    matrix: IntMat,
    offset: Vec<i64>,
}

impl AffineMap {
    /// Creates a map from an `m×d` access matrix and an `m`-vector offset.
    pub fn new(matrix: IntMat, offset: Vec<i64>) -> Result<Self> {
        if matrix.rows() != offset.len() {
            return Err(AffineError::DimMismatch(format!(
                "access matrix has {} rows but offset has {} entries",
                matrix.rows(),
                offset.len()
            )));
        }
        Ok(AffineMap { matrix, offset })
    }

    /// The identity map on `n` dimensions (the default *contiguously linear*
    /// access operator).
    pub fn identity(n: usize) -> Self {
        AffineMap {
            matrix: IntMat::identity(n),
            offset: vec![0; n],
        }
    }

    /// Identity access with a constant shift (`linear` access with offset),
    /// e.g. the `ysss[i][j][k-1]` read of the running example uses offset
    /// `[0, 0, -1]`.
    pub fn shifted_identity(n: usize, offset: Vec<i64>) -> Result<Self> {
        AffineMap::new(IntMat::identity(n), offset)
    }

    /// A map that selects a subset of iteration dimensions:
    /// `dims[j]` gives the iteration dimension feeding data dimension `j`.
    pub fn projection(iter_dims: usize, dims: &[usize]) -> Result<Self> {
        let mut m = IntMat::zeros(dims.len(), iter_dims);
        for (row, &d) in dims.iter().enumerate() {
            if d >= iter_dims {
                return Err(AffineError::DimMismatch(format!(
                    "projection dim {d} out of {iter_dims}"
                )));
            }
            m.set(row, d, 1);
        }
        AffineMap::new(m, vec![0; dims.len()])
    }

    /// A strided access on dimension `dim`: data index = `stride * t_dim +
    /// start` (the paper's *constantly strided* operator).
    pub fn strided(iter_dims: usize, dim: usize, stride: i64, start: i64) -> Result<Self> {
        if dim >= iter_dims {
            return Err(AffineError::DimMismatch(format!(
                "stride dim {dim} out of {iter_dims}"
            )));
        }
        let mut m = IntMat::zeros(1, iter_dims);
        m.set(0, dim, stride);
        AffineMap::new(m, vec![start])
    }

    /// The access matrix `M`.
    pub fn matrix(&self) -> &IntMat {
        &self.matrix
    }

    /// The offset vector `o`.
    pub fn offset(&self) -> &[i64] {
        &self.offset
    }

    /// Iteration-space dimensionality `d`.
    pub fn iter_dims(&self) -> usize {
        self.matrix.cols()
    }

    /// Data-space dimensionality `m`.
    pub fn data_dims(&self) -> usize {
        self.matrix.rows()
    }

    /// Applies the map: `i = M·t + o`.
    pub fn apply(&self, t: &[i64]) -> Result<Vec<i64>> {
        let mut i = self.matrix.matvec(t)?;
        for (x, &o) in i.iter_mut().zip(self.offset.iter()) {
            *x = x.checked_add(o).ok_or(AffineError::Overflow)?;
        }
        Ok(i)
    }

    /// Composition `self ∘ inner`: first apply `inner`, then `self`.
    ///
    /// This is *access map fusion* (§5.1): when the single-assignment
    /// property forces a copy chain of buffer nodes, directly-connected
    /// buffer accesses are merged by composing access matrices and offsets.
    pub fn compose(&self, inner: &AffineMap) -> Result<AffineMap> {
        if self.iter_dims() != inner.data_dims() {
            return Err(AffineError::DimMismatch(format!(
                "compose: outer expects {} dims, inner produces {}",
                self.iter_dims(),
                inner.data_dims()
            )));
        }
        let m = self.matrix.matmul(&inner.matrix)?;
        let mut o = self.matrix.matvec(&inner.offset)?;
        for (x, &extra) in o.iter_mut().zip(self.offset.iter()) {
            *x = x.checked_add(extra).ok_or(AffineError::Overflow)?;
        }
        AffineMap::new(m, o)
    }

    /// Rewrites the map for a reordered iteration space: if `j = T·t`, the
    /// access becomes `i = (M·T⁻¹)·j + o` (§5.2).
    pub fn transform_by(&self, t: &IntMat) -> Result<AffineMap> {
        let t_inv = t.inverse_unimodular()?;
        let m = self.matrix.matmul(&t_inv)?;
        AffineMap::new(m, self.offset.clone())
    }

    /// Dimensions of the *iteration* space along which the accessed data
    /// does not change — the null space of `M` (§5.2 data-reuse analysis).
    pub fn reuse_directions(&self) -> Vec<Vec<i64>> {
        self.matrix.null_space()
    }

    /// True when two iteration points always touch distinct data (injective
    /// map — no reuse at all).
    pub fn is_injective(&self) -> bool {
        self.matrix.null_space().is_empty()
    }
}

impl std::fmt::Display for AffineMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M={:?} o={:?}", self.matrix, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_shift() {
        let id = AffineMap::identity(3);
        assert_eq!(id.apply(&[4, 5, 6]).unwrap(), vec![4, 5, 6]);
        // The running example's e13 map: read ysss[i][j][k-1].
        let e13 = AffineMap::shifted_identity(3, vec![0, 0, -1]).unwrap();
        assert_eq!(e13.apply(&[2, 3, 4]).unwrap(), vec![2, 3, 3]);
    }

    #[test]
    fn new_rejects_mismatch() {
        assert!(AffineMap::new(IntMat::identity(2), vec![0, 0, 0]).is_err());
    }

    #[test]
    fn projection_selects_dims() {
        // The e14 map from Figure 4: ws is accessed with [0 0 1] over (t3,
        // t2, t1) reading only dim t... here dims=[1]: data dim 0 <- iter dim 1.
        let p = AffineMap::projection(3, &[1]).unwrap();
        assert_eq!(p.apply(&[7, 8, 9]).unwrap(), vec![8]);
        assert!(AffineMap::projection(2, &[5]).is_err());
    }

    #[test]
    fn strided_access() {
        // Dilated RNN: stride-4 scan over the sequence dimension.
        let s = AffineMap::strided(2, 1, 4, 1).unwrap();
        assert_eq!(s.apply(&[0, 0]).unwrap(), vec![1]);
        assert_eq!(s.apply(&[0, 3]).unwrap(), vec![13]);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let inner = AffineMap::new(
            IntMat::from_rows(&[vec![1, 0], vec![0, 2]]).unwrap(),
            vec![1, -1],
        )
        .unwrap();
        let outer = AffineMap::new(IntMat::from_rows(&[vec![1, 1]]).unwrap(), vec![10]).unwrap();
        let fused = outer.compose(&inner).unwrap();
        for t in [[0i64, 0], [1, 2], [3, 5]] {
            let two_step = outer.apply(&inner.apply(&t).unwrap()).unwrap();
            assert_eq!(fused.apply(&t).unwrap(), two_step);
        }
    }

    #[test]
    fn transform_by_reorders_iteration_space() {
        // Skew transform from the paper: j = T t with T = [[1,1],[0,1]].
        let t = IntMat::from_rows(&[vec![1, 1], vec![0, 1]]).unwrap();
        let access = AffineMap::identity(2);
        let transformed = access.transform_by(&t).unwrap();
        // For iteration t=(2,3), j = (5,3); access must still hit (2,3).
        let j = t.matvec(&[2, 3]).unwrap();
        assert_eq!(transformed.apply(&j).unwrap(), vec![2, 3]);
    }

    #[test]
    fn reuse_directions_found() {
        // Weights read: data index = t2 only; t1/t3 are reuse directions.
        let m = AffineMap::projection(3, &[1]).unwrap();
        let dirs = m.reuse_directions();
        assert_eq!(dirs.len(), 2);
        assert!(!m.is_injective());
        assert!(AffineMap::identity(2).is_injective());
    }
}
