//! # ft-affine
//!
//! Exact integer/rational linear algebra and polyhedral utilities — the
//! mathematical substrate of the FractalTensor compiler (SOSP 2024, §4.4 and
//! §5.2).
//!
//! The paper's access maps are quasi-affine functions `i = M·t + o` from a
//! block node's iteration space to a buffer node's data space; its access
//! reordering builds a *unimodular* transformation matrix whose first row is
//! a Lamport-hyperplane schedule, detects data reuse through the *null
//! space* of access matrices, and recomputes loop bounds with
//! *Fourier–Motzkin elimination*. This crate implements all of that over
//! exact `i64`/rational arithmetic:
//!
//! * [`Rational`] — overflow-checked exact rationals,
//! * [`IntMat`] — integer matrices with Bareiss determinants, rational
//!   inverses, null-space bases, and unimodular row completion,
//! * [`AffineMap`] — `M·t + o` access maps with composition,
//! * [`ConstraintSet`] / [`fourier_motzkin`] — linear inequality systems,
//!   variable elimination, and per-loop bound extraction,
//! * [`Lin`] — one-parameter linear sizes (`c0 + c1·L`) with the
//!   all-extents domination order used by the shape-polymorphic memory
//!   planner,
//! * lexicographic-order helpers used by dependence legality checks.
//!
//! No floating point appears anywhere in this crate: every compiler decision
//! downstream is exact.

#![forbid(unsafe_code)]

mod constraint;
mod lin;
mod map;
mod matrix;
mod rational;

pub use constraint::{fourier_motzkin, BoundExpr, Constraint, ConstraintSet, LoopBounds};
pub use lin::Lin;
pub use map::AffineMap;
pub use matrix::IntMat;
pub use rational::Rational;

/// Errors produced by the exact linear-algebra layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffineError {
    /// A matrix/vector dimension did not match.
    DimMismatch(String),
    /// Arithmetic overflowed `i64`.
    Overflow,
    /// Division by zero in rational arithmetic.
    DivisionByZero,
    /// The matrix is singular where an inverse was required.
    Singular,
    /// Input vector is not primitive (gcd != 1) where required.
    NotPrimitive,
    /// Generic invalid-argument error.
    Invalid(String),
}

impl std::fmt::Display for AffineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AffineError::DimMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            AffineError::Overflow => write!(f, "integer overflow in exact arithmetic"),
            AffineError::DivisionByZero => write!(f, "division by zero"),
            AffineError::Singular => write!(f, "matrix is singular"),
            AffineError::NotPrimitive => write!(f, "vector is not primitive (gcd != 1)"),
            AffineError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for AffineError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, AffineError>;

/// Greatest common divisor (always non-negative; `gcd(0, 0) == 0`).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// GCD of a whole slice.
pub fn gcd_slice(v: &[i64]) -> i64 {
    v.iter().copied().fold(0, gcd)
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y == g == gcd(a, b)`.
pub fn egcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// True when `v` is lexicographically positive (first nonzero entry > 0).
/// The zero vector is *not* lex-positive.
pub fn is_lex_positive(v: &[i64]) -> bool {
    for &x in v {
        if x > 0 {
            return true;
        }
        if x < 0 {
            return false;
        }
    }
    false
}

/// Lexicographic comparison of two equal-length vectors.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> std::cmp::Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd_slice(&[4, 6, 8]), 2);
        assert_eq!(gcd_slice(&[]), 0);
    }

    #[test]
    fn egcd_bezout() {
        let (g, x, y) = egcd(240, 46);
        assert_eq!(g, 2);
        assert_eq!(240 * x + 46 * y, 2);
        let (g, x, y) = egcd(-7, 3);
        assert_eq!(g, 1);
        assert_eq!(-7 * x + 3 * y, 1);
    }

    #[test]
    fn lex_positive() {
        assert!(is_lex_positive(&[0, 1, -5]));
        assert!(!is_lex_positive(&[0, -1, 5]));
        assert!(!is_lex_positive(&[0, 0, 0]));
        assert!(is_lex_positive(&[2]));
    }

    #[test]
    fn lex_ordering() {
        use std::cmp::Ordering;
        assert_eq!(lex_cmp(&[1, 2], &[1, 3]), Ordering::Less);
        assert_eq!(lex_cmp(&[2, 0], &[1, 9]), Ordering::Greater);
        assert_eq!(lex_cmp(&[1, 2], &[1, 2]), Ordering::Equal);
    }

    proptest! {
        #[test]
        fn prop_egcd_is_bezout(a in -10_000i64..10_000, b in -10_000i64..10_000) {
            let (g, x, y) = egcd(a, b);
            prop_assert_eq!(g, gcd(a, b));
            prop_assert_eq!(a * x + b * y, g);
        }

        #[test]
        fn prop_gcd_divides(a in 1i64..10_000, b in 1i64..10_000) {
            let g = gcd(a, b);
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
        }
    }
}
