//! BigBird blocked sparse attention (paper Listing 4; random attention
//! omitted exactly as the listing does).
//!
//! Every query block attends to a 3-block sliding window (clamped at the
//! boundaries, Listing 4's `shifted_slide`) plus the first and last key
//! blocks (global attention). The FractalTensor program is a single
//! fully-parallel nest over (head, position) whose window reads are
//! *affine* accesses with carried boundary initializers — the compiler
//! never materializes the gathered windows, which is the §6.4 source of
//! the memory-traffic win (Table 7 ②).

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_sim::Region;
use ft_tensor::Tensor;

use crate::strategies::{machine, SimReport, Strategy};

/// Shape of a BigBird run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BigBirdShape {
    /// Number of attention heads (sequences).
    pub heads: usize,
    /// Number of blocks per sequence.
    pub blocks: usize,
    /// Tokens per block.
    pub block: usize,
    /// Model/head dimension.
    pub dh: usize,
}

impl BigBirdShape {
    /// Listing 4's shape — `[16, 64]` blocks of `[32, 512]` per sequence —
    /// at the official implementation's batch of 32 sequences
    /// (`heads = 32 × 16` independent (sequence, head) pairs, matching the
    /// traffic magnitude Table 7 profiles).
    pub fn paper() -> Self {
        BigBirdShape {
            heads: 32 * 16,
            blocks: 64,
            block: 32,
            dh: 512,
        }
    }

    /// Tiny correctness shape.
    pub fn tiny() -> Self {
        BigBirdShape {
            heads: 2,
            blocks: 5,
            block: 3,
            dh: 8,
        }
    }

    /// Softmax scale.
    pub fn scale(&self) -> f32 {
        1.0 / (self.dh as f32).sqrt()
    }

    /// FLOPs of one (head, position) cell: 5 score GEMMs + 5 value GEMMs.
    pub fn cell_flops(&self) -> u64 {
        let (b, d) = (self.block as u64, self.dh as u64);
        10 * 2 * b * b * d + 6 * b * 5 * b
    }
}

/// Buffer ids of [`program`]'s declarations.
pub mod buffers {
    use ft_core::BufferId;
    /// Query blocks `[G, NB]` of `[block, dh]`.
    pub const Q: BufferId = BufferId(0);
    /// Key blocks `[G, NB]` of `[block, dh]`.
    pub const K: BufferId = BufferId(1);
    /// Value blocks `[G, NB]` of `[block, dh]`.
    pub const V: BufferId = BufferId(2);
    /// Output blocks `[G, NB]` of `[block, dh]`.
    pub const OUT: BufferId = BufferId(3);
}

/// Builds the Listing 4 program.
pub fn program(s: BigBirdShape) -> Program {
    let (g, nb, blk, dh) = (s.heads, s.blocks, s.block, s.dh);
    assert!(nb >= 3, "BigBird needs at least 3 blocks");
    let mut p = Program::new("bigbird");
    let q = p.input("qss", &[g, nb], &[blk, dh]);
    let k = p.input("kss", &[g, nb], &[blk, dh]);
    let v = p.input("vss", &[g, nb], &[blk, dh]);
    let out = p.output("oss", &[g, nb], &[blk, dh]);

    // UDF inputs: q, k0, k_left, k_mid, k_right, kN, v0, v_left, v_mid,
    // v_right, vN.
    let mut bld = UdfBuilder::new("bigbird_cell", 11);
    let qi = bld.input(0);
    let ks: Vec<_> = (1..6).map(|i| bld.input(i)).collect();
    let vs: Vec<_> = (6..11).map(|i| bld.input(i)).collect();
    let mut scores = Vec::with_capacity(5);
    for &kb in &ks {
        let raw = bld.matmul_t(qi, kb);
        scores.push(bld.scale(raw, s.scale()));
    }
    let cat = bld.concat(scores, 1);
    let sm = bld.softmax(cat);
    let mut acc = None;
    for (i, &vb) in vs.iter().enumerate() {
        let sl = bld.slice(sm, 1, i * blk, (i + 1) * blk);
        let pv = bld.matmul(sl, vb);
        acc = Some(match acc {
            None => pv,
            Some(a) => bld.add(a, pv),
        });
    }
    let udf = bld.build(&[acc.expect("five value blocks")]);

    // Window reads with boundary clamping expressed as carried inits:
    // pos-1 clamps to block 0, pos+1 clamps to block NB-1 (shifted_slide).
    let at = |axis1: AxisExpr| AccessSpec::new(vec![AxisExpr::var(0), axis1]);
    let clamped = |buf, off: i64, init_idx: i64| {
        Read::carried(
            buf,
            at(AxisExpr::shifted(1, off)),
            CarriedInit::Buffer(buf, at(AxisExpr::constant(init_idx))),
        )
    };
    p.add_nest(Nest {
        name: "bigbird".into(),
        ops: vec![OpKind::Map, OpKind::Map],
        extents: vec![g, nb],
        reads: vec![
            Read::plain(q, AccessSpec::identity(2)),
            // Keys: global-left, window (clamped), global-right.
            Read::plain(k, at(AxisExpr::constant(0))),
            clamped(k, -1, 0),
            Read::plain(k, AccessSpec::identity(2)),
            clamped(k, 1, nb as i64 - 1),
            Read::plain(k, at(AxisExpr::constant(nb as i64 - 1))),
            // Values, same pattern.
            Read::plain(v, at(AxisExpr::constant(0))),
            clamped(v, -1, 0),
            Read::plain(v, AccessSpec::identity(2)),
            clamped(v, 1, nb as i64 - 1),
            Read::plain(v, at(AxisExpr::constant(nb as i64 - 1))),
        ],
        writes: vec![Write {
            buffer: out,
            access: AccessSpec::identity(2),
        }],
        udf,
    })
    .expect("bigbird nest is well-formed");
    p
}

/// Deterministic inputs.
pub fn inputs(s: BigBirdShape, seed: u64) -> HashMap<BufferId, FractalTensor> {
    let (g, nb, blk, dh) = (s.heads, s.blocks, s.block, s.dh);
    let mut m = HashMap::new();
    for (id, sd) in [(buffers::Q, 0u64), (buffers::K, 1), (buffers::V, 2)] {
        m.insert(
            id,
            FractalTensor::from_flat(&Tensor::randn(&[g, nb, blk, dh], seed + sd), 2).expect("qkv"),
        );
    }
    m
}

/// Eager reference on plain tensors with explicit clamping.
pub fn reference(
    q: &FractalTensor,
    k: &FractalTensor,
    v: &FractalTensor,
    s: BigBirdShape,
) -> FractalTensor {
    let nb = s.blocks;
    let mut heads = Vec::with_capacity(s.heads);
    for g in 0..s.heads {
        let kb = |i: usize| k.leaf_at(&[g, i]).expect("k block");
        let vb = |i: usize| v.leaf_at(&[g, i]).expect("v block");
        let mut out_blocks = Vec::with_capacity(nb);
        for pos in 0..nb {
            let qb = q.leaf_at(&[g, pos]).expect("q block");
            let left = pos.saturating_sub(1);
            let right = if pos + 1 < nb { pos + 1 } else { nb - 1 };
            let key_ids = [0, left, pos, right, nb - 1];
            let scores: Vec<Tensor> = key_ids
                .iter()
                .map(|&i| qb.matmul_transb(kb(i)).expect("qk").mul_scalar(s.scale()))
                .collect();
            let cat = Tensor::concat(&scores, 1).expect("concat");
            let sm = cat.softmax_rows().expect("softmax");
            let mut acc = Tensor::zeros(&[s.block, s.dh]);
            for (slot, &i) in key_ids.iter().enumerate() {
                let sl = sm
                    .slice(1, slot * s.block, (slot + 1) * s.block)
                    .expect("slice")
                    .to_contiguous();
                acc = acc.add(&sl.matmul(vb(i)).expect("pv")).expect("acc");
            }
            out_blocks.push(acc);
        }
        heads.push(FractalTensor::from_tensors(out_blocks).expect("head"));
    }
    FractalTensor::nested(heads).expect("output")
}

/// Simulates one strategy; `None` for `Handcrafted` (no vendor BigBird
/// kernel — the paper's best baseline is Triton).
pub fn simulate(s: BigBirdShape, strategy: Strategy) -> Option<SimReport> {
    if strategy == Strategy::Handcrafted {
        return None;
    }
    let mut m = machine();
    let fb = 4u64;
    let (g, nb) = (s.heads as u64, s.blocks as u64);
    let blk_bytes = (s.block * s.dh) as u64 * fb;
    let qkv_bytes = g * nb * blk_bytes;
    let q = m.alloc(qkv_bytes);
    let k = m.alloc(qkv_bytes);
    let v = m.alloc(qkv_bytes);
    let out = m.alloc(qkv_bytes);
    let total_flops = g * nb * s.cell_flops();
    let scores_bytes = g * nb * (s.block * 5 * s.block) as u64 * fb;

    match strategy {
        Strategy::Eager | Strategy::FusedOp => {
            // DAG execution materializes the gathered windows and every
            // intermediate; TVM additionally rescans the gathered tensors
            // per consumer ("tensors are scanned back and forth").
            let gathered_k = m.alloc(3 * qkv_bytes);
            let gathered_v = m.alloc(3 * qkv_bytes);
            let scores = m.alloc(scores_bytes);
            let scratch = m.alloc(scores_bytes);
            let rescans = if strategy == Strategy::FusedOp { 4 } else { 1 };
            // Gather kernels (pure data movement — the §6.4 "operators that
            // do not compute but merely move data").
            for (src, dst) in [(k, gathered_k), (v, gathered_v)] {
                let kg = ft_sim::Kernel {
                    name: "gather_window".into(),
                    flops: 0,
                    tensor_cores: false,
                    reads: vec![Region::whole(src); 3],
                    writes: vec![Region::whole(dst)],
                    l1_extra_bytes: 0,
                    ctas: g * nb,
                    smem_per_cta: 0,
                };
                m.launch(&kg);
            }
            // Score GEMMs, softmax, value GEMMs — each its own kernel
            // streaming through DRAM.
            for (name, reads, writes, flops) in [
                (
                    "window_qk",
                    vec![Region::whole(q), Region::whole(gathered_k)],
                    vec![Region::whole(scores)],
                    total_flops / 2,
                ),
                (
                    "softmax",
                    vec![Region::whole(scores); rescans],
                    vec![Region::whole(scores)],
                    scores_bytes,
                ),
                (
                    "weighted_v",
                    vec![Region::whole(scores), Region::whole(gathered_v)],
                    vec![Region::whole(out)],
                    total_flops / 2,
                ),
            ] {
                let kk = ft_sim::Kernel {
                    name: name.into(),
                    flops,
                    tensor_cores: name != "softmax",
                    reads,
                    writes,
                    l1_extra_bytes: flops / 8,
                    ctas: g * nb,
                    smem_per_cta: 32 * 1024,
                };
                m.launch(&kk);
                if strategy == Strategy::FusedOp {
                    // TVM re-materializes between stages: the scores and
                    // gathered operands stream to a fresh layout and back.
                    let kc1 = ft_sim::Kernel {
                        name: "rescan_out".into(),
                        flops: 0,
                        tensor_cores: false,
                        reads: vec![Region::whole(scores), Region::whole(gathered_k)],
                        writes: vec![Region::whole(scratch)],
                        l1_extra_bytes: 0,
                        ctas: g * nb,
                        smem_per_cta: 0,
                    };
                    m.launch(&kc1);
                    let kc2 = ft_sim::Kernel {
                        name: "rescan_back".into(),
                        flops: 0,
                        tensor_cores: false,
                        reads: vec![Region::whole(scratch), Region::whole(gathered_v)],
                        writes: vec![Region::whole(scores)],
                        l1_extra_bytes: 0,
                        ctas: g * nb,
                        smem_per_cta: 0,
                    };
                    m.launch(&kc2);
                }
            }
        }
        Strategy::BlockTile => {
            // Triton: one fused kernel, but the gathered windows are built
            // in DRAM once by a preparatory pass.
            let gathered = m.alloc(6 * qkv_bytes);
            let kg = ft_sim::Kernel {
                name: "gather_windows".into(),
                flops: 0,
                tensor_cores: false,
                reads: vec![Region::whole(k), Region::whole(v)],
                writes: vec![Region::whole(gathered)],
                l1_extra_bytes: 0,
                ctas: g * nb,
                smem_per_cta: 0,
            };
            m.launch(&kg);
            let kf = ft_sim::Kernel {
                name: "bigbird_fused".into(),
                flops: total_flops,
                tensor_cores: true,
                reads: vec![Region::whole(q), Region::whole(gathered)],
                writes: vec![Region::whole(out)],
                l1_extra_bytes: total_flops / 8 + scores_bytes,
                ctas: g * nb,
                smem_per_cta: 64 * 1024,
            };
            m.launch(&kf);
        }
        Strategy::FractalTensor => {
            // Deferred access materialization: the window reads stay
            // logical (access maps) until the batched GEMM stages them in
            // shared memory — no gathered copies, no materialized scores.
            let compiled = ft_passes::compile(&program(s)).expect("bigbird compiles");
            assert_eq!(compiled.groups.len(), 1);
            assert_eq!(compiled.groups[0].reordering.sequential_dims, 0);
            let kf = ft_sim::Kernel {
                name: "bigbird_ft".into(),
                flops: total_flops,
                tensor_cores: true,
                // Window overlap: each k/v block is touched by ~3 window
                // positions plus the two globals, all served from L2 after
                // one DRAM pass.
                reads: vec![
                    Region::whole(q),
                    Region::whole(k),
                    Region::whole(k),
                    Region::whole(v),
                    Region::whole(v),
                ],
                writes: vec![Region::whole(out)],
                l1_extra_bytes: total_flops / 8 + scores_bytes,
                ctas: g * nb,
                smem_per_cta: 96 * 1024,
            };
            m.launch(&kf);
        }
        Strategy::Handcrafted => unreachable!("filtered above"),
    }
    Some(SimReport::from_machine(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    #[test]
    fn interpreter_matches_eager_reference() {
        let s = BigBirdShape::tiny();
        let ins = inputs(s, 61);
        let out = run_program(&program(s), &ins).unwrap();
        let expected = reference(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
        assert_allclose(
            &out[&buffers::OUT].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn boundary_regions_cover_clamped_positions() {
        let s = BigBirdShape::tiny();
        let g = ft_etdg::parse_program(&program(s)).unwrap();
        // Three non-empty regions: pos = 0, interior, pos = NB-1.
        assert_eq!(g.blocks.len(), 3);
    }

    #[test]
    fn compiled_matches_eager_reference() {
        let s = BigBirdShape::tiny();
        let ins = inputs(s, 63);
        let compiled = compile(&program(s)).unwrap();
        let got = execute(&compiled, &ins, 4).unwrap();
        let expected = reference(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
        assert_allclose(
            &got[&buffers::OUT].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn table7_traffic_ordering() {
        // Table 7 ②: FT < Triton < PyTorch < TVM on every level.
        let s = BigBirdShape {
            heads: 8,
            blocks: 64,
            block: 64,
            dh: 256,
        };
        let ft = simulate(s, Strategy::FractalTensor).unwrap();
        let triton = simulate(s, Strategy::BlockTile).unwrap();
        let pytorch = simulate(s, Strategy::Eager).unwrap();
        let tvm = simulate(s, Strategy::FusedOp).unwrap();
        assert!(simulate(s, Strategy::Handcrafted).is_none());
        assert!(ft.traffic.dram_bytes < triton.traffic.dram_bytes);
        assert!(triton.traffic.dram_bytes < pytorch.traffic.dram_bytes);
        assert!(pytorch.traffic.dram_bytes < tvm.traffic.dram_bytes);
        assert!(ft.traffic.l2_bytes < triton.traffic.l2_bytes);
        assert!(ft.ms < triton.ms);
    }
}
