//! # ft-workloads
//!
//! The six DNN workloads of the paper's evaluation (Table 6), each in three
//! forms:
//!
//! 1. a **FractalTensor program** (the `ft-core` staged IR), compiled
//!    through the full ETDG pipeline and executed by `ft-backend`,
//! 2. an **eager reference** implementation using the `FractalTensor` ADT
//!    and plain tensor math — the semantic oracle,
//! 3. a family of **simulator strategies** (`ft-sim` kernel sequences)
//!    modelling how each baseline of §6 executes the same computation:
//!    eager per-operator DAG execution (PyTorch/TensorFlow-like), adjacent-
//!    operator fusion (TVM-like), hand-tiled single-cell block kernels
//!    (Triton-like), a handcrafted wavefront (cuDNN-like), and the
//!    FractalTensor schedule derived from the *actual* compiled program.
//!
//! | module | workload (Table 6) |
//! |---|---|
//! | [`lstm`] | stacked LSTM, batch 256, depth 32 |
//! | [`dilated`] | stacked dilated RNNs, dilation 1..32 |
//! | [`grid`] | stacked grid RNNs (2-D grid of cells) |
//! | [`b2b`] | back-to-back GEMMs, K = P = 64 |
//! | [`attention`] | FlashAttention (Listing 3) |
//! | [`bigbird`] | BigBird blocked sparse attention (Listing 4) |
//! | [`retnet`] | RetNet retention — the §7 "emerging models" extension |
//!
//! [`decode`] additionally holds the *autoregressive decode-step* variants
//! (single-token attention against a pinned KV cache, single-step stacked
//! RNN) that back `ft-serve`'s stateful sessions.

#![forbid(unsafe_code)]

pub mod attention;
pub mod b2b;
pub mod bigbird;
pub mod decode;
pub mod dilated;
pub mod grid;
pub mod lstm;
pub mod retnet;
pub mod strategies;

pub use strategies::{mutated_inputs, mutated_program, MutationClass, SimReport, Strategy};
