//! RetNet-style retention (an extension workload, paper §7).
//!
//! The paper's discussion names Mamba/RWKV/RetNet as emerging architectures
//! FractalTensor is "well-positioned to support". This module demonstrates
//! it: the *retention* recurrence
//!
//! ```text
//! S_t = γ · S_{t-1} + k_tᵀ v_t          (state: a [dh, dv] matrix)
//! o_t = q_t · S_t
//! ```
//!
//! is one `map` (batch·heads) of a `scanl` (time) whose carried state is a
//! matrix-shaped leaf — exactly the nested-operator pattern of the RNN
//! family, so the whole compiler pipeline (region split, coarsening,
//! wavefront reordering) applies unchanged. No paper figure corresponds to
//! this module; it exists to exercise §7's claim.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_sim::Region;
use ft_tensor::Tensor;

use crate::strategies::{machine, SimReport, Strategy};

/// Shape of a retention run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetNetShape {
    /// Batch · heads (independent sequences).
    pub seqs: usize,
    /// Sequence length.
    pub len: usize,
    /// Key/query dimension.
    pub dk: usize,
    /// Value dimension.
    pub dv: usize,
    /// Decay factor γ.
    pub gamma: f32,
}

impl RetNetShape {
    /// A representative shape (RetNet base: dk = dv = 64 per head).
    pub fn default_shape() -> Self {
        RetNetShape {
            seqs: 256,
            len: 128,
            dk: 64,
            dv: 64,
            gamma: 0.97,
        }
    }

    /// Tiny correctness shape.
    pub fn tiny() -> Self {
        RetNetShape {
            seqs: 2,
            len: 5,
            dk: 4,
            dv: 6,
            gamma: 0.9,
        }
    }

    /// FLOPs of one retention step (state update + readout).
    pub fn step_flops(&self) -> u64 {
        let (dk, dv) = (self.dk as u64, self.dv as u64);
        2 * dk * dv + 2 * dk * dv + dk * dv
    }
}

/// Buffer ids of [`program`]'s declarations.
pub mod buffers {
    use ft_core::BufferId;
    /// Queries `[seqs, len]` of `[1, dk]`.
    pub const Q: BufferId = BufferId(0);
    /// Keys `[seqs, len]` of `[1, dk]`.
    pub const K: BufferId = BufferId(1);
    /// Values `[seqs, len]` of `[1, dv]`.
    pub const V: BufferId = BufferId(2);
    /// Retention states `[seqs, len]` of `[dk, dv]` (intermediate).
    pub const S: BufferId = BufferId(3);
    /// Outputs `[seqs, len]` of `[1, dv]`.
    pub const O: BufferId = BufferId(4);
}

/// Builds the retention program: `map` over sequences, `scanl` over time
/// with a matrix-leaf carried state.
pub fn program(s: RetNetShape) -> Program {
    let mut p = Program::new("retnet_retention");
    let q = p.input("q", &[s.seqs, s.len], &[1, s.dk]);
    let k = p.input("k", &[s.seqs, s.len], &[1, s.dk]);
    let v = p.input("v", &[s.seqs, s.len], &[1, s.dv]);
    let st = p.intermediate("state", &[s.seqs, s.len], &[s.dk, s.dv]);
    let o = p.output("o", &[s.seqs, s.len], &[1, s.dv]);

    // UDF inputs: q, k, v, S_prev. Outputs: S_new, o.
    let mut bld = UdfBuilder::new("retention_step", 4);
    let (qi, ki, vi, sp) = (bld.input(0), bld.input(1), bld.input(2), bld.input(3));
    // kᵀ v: [dk, 1] @ [1, dv] = [dk, dv] — transpose the row vector first.
    let kt = bld.transpose(ki);
    let kv = bld.matmul(kt, vi);
    let decayed = bld.scale(sp, s.gamma);
    let snew = bld.add(decayed, kv);
    let out = bld.matmul(qi, snew);
    let udf = bld.build(&[snew, out]);

    p.add_nest(Nest {
        name: "retention".into(),
        ops: vec![OpKind::Map, OpKind::ScanL],
        extents: vec![s.seqs, s.len],
        reads: vec![
            Read::plain(q, AccessSpec::identity(2)),
            Read::plain(k, AccessSpec::identity(2)),
            Read::plain(v, AccessSpec::identity(2)),
            Read::carried(
                st,
                AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, -1)]),
                CarriedInit::Zero,
            ),
        ],
        writes: vec![
            Write {
                buffer: st,
                access: AccessSpec::identity(2),
            },
            Write {
                buffer: o,
                access: AccessSpec::identity(2),
            },
        ],
        udf,
    })
    .expect("retention nest is well-formed");
    p
}

/// Deterministic inputs.
pub fn inputs(s: RetNetShape, seed: u64) -> HashMap<BufferId, FractalTensor> {
    let mut m = HashMap::new();
    m.insert(
        buffers::Q,
        FractalTensor::from_flat(&Tensor::randn(&[s.seqs, s.len, 1, s.dk], seed), 2).expect("q"),
    );
    m.insert(
        buffers::K,
        FractalTensor::from_flat(
            &Tensor::randn(&[s.seqs, s.len, 1, s.dk], seed + 1).mul_scalar(0.5),
            2,
        )
        .expect("k"),
    );
    m.insert(
        buffers::V,
        FractalTensor::from_flat(&Tensor::randn(&[s.seqs, s.len, 1, s.dv], seed + 2), 2)
            .expect("v"),
    );
    m
}

/// Eager reference via the ADT's `scanl_state` with a matrix accumulator.
pub fn reference(
    q: &FractalTensor,
    k: &FractalTensor,
    v: &FractalTensor,
    s: RetNetShape,
) -> FractalTensor {
    let mut seqs = Vec::with_capacity(s.seqs);
    for b in 0..s.seqs {
        let mut state = Tensor::zeros(&[s.dk, s.dv]);
        let mut outs = Vec::with_capacity(s.len);
        for t in 0..s.len {
            let (qt, kt, vt) = (
                q.leaf_at(&[b, t]).expect("q"),
                k.leaf_at(&[b, t]).expect("k"),
                v.leaf_at(&[b, t]).expect("v"),
            );
            let kv = kt
                .t()
                .expect("transpose")
                .to_contiguous()
                .matmul(vt)
                .expect("k^T v");
            state = state.mul_scalar(s.gamma).add(&kv).expect("decay + kv");
            outs.push(qt.matmul(&state).expect("q S"));
        }
        seqs.push(FractalTensor::from_tensors(outs).expect("sequence"));
    }
    FractalTensor::nested(seqs).expect("output")
}

/// Simulates the recurrent (O(L)) retention under each strategy, plus the
/// quadratic "parallel form" as `Eager` (the transformer-style O(L²)
/// attention with a decay mask, which is how DAG frameworks run RetNet).
pub fn simulate(s: RetNetShape, strategy: Strategy) -> Option<SimReport> {
    if strategy == Strategy::Handcrafted {
        return None; // No vendor retention kernel.
    }
    let mut m = machine();
    let fb = 4u64;
    let (bs, l, dk, dv) = (s.seqs as u64, s.len as u64, s.dk as u64, s.dv as u64);
    let q = m.alloc(bs * l * dk * fb);
    let k = m.alloc(bs * l * dk * fb);
    let v = m.alloc(bs * l * dv * fb);
    let o = m.alloc(bs * l * dv * fb);

    match strategy {
        Strategy::Eager | Strategy::FusedOp => {
            // The quadratic parallel form: (Q Kᵀ ⊙ D) V with the decay mask
            // materialized; O(L²) compute and a [L, L] intermediate.
            let scores = m.alloc(bs * l * l * fb);
            let n_kernels = if strategy == Strategy::Eager { 4 } else { 2 };
            for i in 0..n_kernels {
                let kk = ft_sim::Kernel {
                    name: format!("retnet_parallel_{i}"),
                    flops: bs * (2 * l * l * dk) / n_kernels,
                    tensor_cores: true,
                    reads: vec![Region::whole(q), Region::whole(k), Region::whole(scores)],
                    writes: vec![if i + 1 == n_kernels {
                        Region::whole(o)
                    } else {
                        Region::whole(scores)
                    }],
                    l1_extra_bytes: bs * l * l / 4,
                    ctas: bs,
                    smem_per_cta: 48 * 1024,
                };
                m.launch(&kk);
            }
        }
        Strategy::BlockTile => {
            // Chunked recurrence: one kernel per chunk of 64 steps.
            let chunks = l.div_ceil(64);
            for c in 0..chunks {
                let kk = ft_sim::Kernel {
                    name: format!("retnet_chunk_{c}"),
                    flops: bs * 64 * s.step_flops(),
                    tensor_cores: true,
                    reads: vec![Region::whole(q), Region::whole(k), Region::whole(v)],
                    writes: vec![Region::whole(o)],
                    l1_extra_bytes: bs * dk * dv * fb,
                    ctas: bs,
                    smem_per_cta: 64 * 1024,
                };
                m.launch(&kk);
            }
        }
        Strategy::FractalTensor => {
            // The compiled linear recurrence: one launch group, L wavefront
            // steps, the [dk, dv] state resident in registers/smem.
            let compiled = ft_passes::compile(&program(s)).expect("retention compiles");
            assert_eq!(compiled.groups.len(), 1);
            let steps = compiled.groups[0].wavefront_steps() as u64;
            let kk = ft_sim::Kernel {
                name: "retnet_recurrence".into(),
                flops: bs * steps * s.step_flops(),
                tensor_cores: true,
                reads: vec![Region::whole(q), Region::whole(k), Region::whole(v)],
                writes: vec![Region::whole(o)],
                l1_extra_bytes: bs * steps * dk * dv * fb,
                ctas: bs,
                smem_per_cta: 96 * 1024,
            };
            m.launch(&kk);
        }
        Strategy::Handcrafted => unreachable!("filtered above"),
    }
    Some(SimReport::from_machine(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    #[test]
    fn interpreter_matches_eager_reference() {
        let s = RetNetShape::tiny();
        let ins = inputs(s, 71);
        let out = run_program(&program(s), &ins).unwrap();
        let expected = reference(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
        assert_allclose(
            &out[&buffers::O].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn compiled_matches_eager_reference() {
        let s = RetNetShape::tiny();
        let ins = inputs(s, 73);
        let compiled = compile(&program(s)).unwrap();
        // One group: wavefront over time, batch fully parallel.
        assert_eq!(compiled.groups.len(), 1);
        assert_eq!(compiled.groups[0].wavefront_steps(), s.len as i64);
        let got = execute(&compiled, &ins, 4).unwrap();
        let expected = reference(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
        assert_allclose(
            &got[&buffers::O].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn state_is_a_matrix_leaf() {
        let s = RetNetShape::tiny();
        let g = ft_etdg::parse_program(&program(s)).unwrap();
        let state = &g.buffers[buffers::S.0];
        assert_eq!(state.leaf_shape.dims(), &[s.dk, s.dv]);
        // Two regions: the t = 0 boundary and the interior.
        assert_eq!(g.blocks.len(), 2);
    }

    #[test]
    fn linear_recurrence_beats_quadratic_form_at_long_lengths() {
        let s = RetNetShape {
            seqs: 64,
            len: 512,
            dk: 64,
            dv: 64,
            gamma: 0.97,
        };
        let quad = simulate(s, Strategy::Eager).unwrap();
        let lin = simulate(s, Strategy::FractalTensor).unwrap();
        assert!(
            lin.ms < quad.ms,
            "linear {} vs quadratic {}",
            lin.ms,
            quad.ms
        );
        assert!(simulate(s, Strategy::Handcrafted).is_none());
    }
}
