//! Execution strategies and shared simulator plumbing.
//!
//! Each enum variant models one §6 baseline's *execution structure* — how
//! the same mathematical workload is cut into kernels and what crosses each
//! memory level — per the substitution table in `DESIGN.md`.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{CarriedInit, CoreError, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_sim::{GpuConfig, SimMachine, TrafficCounters};
use ft_tensor::Tensor;

/// An execution strategy for a workload on the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One materialized kernel per tensor operator; every intermediate
    /// round-trips through DRAM (PyTorch / TensorFlow DAG execution).
    Eager,
    /// Elementwise chains fused into the preceding GEMM, but no fusion
    /// across loop-carried boundaries and gather/concat data movement is
    /// materialized (TVM-like DSL scope).
    FusedOp,
    /// Hand-tiled single-cell kernels: intermediates of one cell stay in
    /// shared memory, but cells launch separately and no cross-cell
    /// wavefront exists (Triton-like block programming).
    BlockTile,
    /// A handcrafted wavefront over the whole network in one low-level
    /// program (cuDNN's stacked-RNN approach; CUTLASS/cuBLAS for GEMMs,
    /// FlashAttention-2 for attention).
    Handcrafted,
    /// The FractalTensor schedule: whatever the compiler pipeline actually
    /// produced (wavefront structure, fused launch groups, reuse staging).
    FractalTensor,
}

impl Strategy {
    /// All strategies, for sweep loops.
    pub const ALL: [Strategy; 5] = [
        Strategy::Eager,
        Strategy::FusedOp,
        Strategy::BlockTile,
        Strategy::Handcrafted,
        Strategy::FractalTensor,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Eager => "PyTorch/TF (eager DAG)",
            Strategy::FusedOp => "TVM (fused ops)",
            Strategy::BlockTile => "Triton (block tiles)",
            Strategy::Handcrafted => "handcrafted (cuDNN/cuBLAS/FA-2)",
            Strategy::FractalTensor => "FractalTensor",
        }
    }

    /// Short label for table columns.
    pub fn short(&self) -> &'static str {
        match self {
            Strategy::Eager => "eager",
            Strategy::FusedOp => "fused",
            Strategy::BlockTile => "blocktile",
            Strategy::Handcrafted => "handcrafted",
            Strategy::FractalTensor => "fractaltensor",
        }
    }
}

/// The outcome of simulating one workload under one strategy.
#[derive(Debug, Clone, Copy)]
pub struct SimReport {
    /// Modeled end-to-end time, milliseconds.
    pub ms: f64,
    /// Per-level traffic totals.
    pub traffic: TrafficCounters,
    /// Kernel launches issued.
    pub kernels: u64,
}

impl SimReport {
    /// Collects the report from a machine after a strategy ran on it.
    pub fn from_machine(m: &SimMachine) -> Self {
        SimReport {
            ms: m.elapsed_ms(),
            traffic: m.counters(),
            kernels: m.kernels_launched(),
        }
    }
}

/// A fresh A100-shaped machine.
pub fn machine() -> SimMachine {
    SimMachine::new(GpuConfig::a100())
}

/// Classes of deliberate program corruption for robustness property tests.
///
/// Each class yields a malformed program that must surface as a typed
/// `Err` somewhere along construct → compile → verify → execute — never a
/// panic and never a silent wrong answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationClass {
    /// The output buffer's leaf shape disagrees with what the UDF
    /// produces (caught at nest construction).
    ShapeMismatch,
    /// An uncarried read whose access-map offset walks off the end of its
    /// buffer (caught by the verifier's range check or at execution).
    OutOfRangeOffset,
    /// A nest level with zero extent (caught at nest construction).
    EmptyDimension,
    /// Forward- and backward-carried reads on one dimension — a
    /// dependence cycle no single hyperplane can order (caught by the
    /// reorderer during compilation).
    DependenceCycle,
}

impl MutationClass {
    /// All mutation classes, for sweep loops and property tests.
    pub const ALL: [MutationClass; 4] = [
        MutationClass::ShapeMismatch,
        MutationClass::OutOfRangeOffset,
        MutationClass::EmptyDimension,
        MutationClass::DependenceCycle,
    ];

    /// Diagnostic label.
    pub fn label(&self) -> &'static str {
        match self {
            MutationClass::ShapeMismatch => "shape_mismatch",
            MutationClass::OutOfRangeOffset => "out_of_range_offset",
            MutationClass::EmptyDimension => "empty_dimension",
            MutationClass::DependenceCycle => "dependence_cycle",
        }
    }
}

fn scan_udf(name: &str, inputs: usize) -> ft_core::Udf {
    let mut b = UdfBuilder::new(name, inputs);
    let mut acc = b.input(0);
    for i in 1..inputs {
        let x = b.input(i);
        acc = b.add(acc, x);
    }
    let o = b.id(acc);
    b.build(&[o])
}

/// Builds a length-`l` scan program corrupted according to `class`.
/// `magnitude` (clamped to ≥ 1) scales how far the corrupted access
/// overshoots. A typed construction error counts as the mutation being
/// caught early; an `Ok` program must then fail in compile, verify, or
/// execute.
pub fn mutated_program(
    class: MutationClass,
    l: usize,
    magnitude: usize,
) -> Result<Program, CoreError> {
    let l = l.max(2);
    let magnitude = magnitude.max(1) as i64;
    let mut p = Program::new("mutated");
    match class {
        MutationClass::ShapeMismatch => {
            let x = p.input("x", &[l], &[1, 2]);
            // The identity UDF forwards leaf [1, 2]; declaring [1, 4]
            // must be rejected when the nest is validated.
            let y = p.output("y", &[l], &[1, 4]);
            p.add_nest(Nest {
                name: "shape_mismatch".into(),
                ops: vec![OpKind::Map],
                extents: vec![l],
                reads: vec![Read::plain(x, AccessSpec::identity(1))],
                writes: vec![Write {
                    buffer: y,
                    access: AccessSpec::identity(1),
                }],
                udf: scan_udf("shape_mismatch", 1),
            })?;
        }
        MutationClass::OutOfRangeOffset => {
            let x = p.input("x", &[l], &[1, 2]);
            let y = p.output("y", &[l], &[1, 2]);
            // tanh keeps the block from being a pure copy — coarsening
            // would otherwise fuse it away before anything can inspect
            // the corrupted map.
            let udf = {
                let mut b = UdfBuilder::new("oob_offset", 1);
                let x = b.input(0);
                let t = b.tanh(x);
                b.build(&[t])
            };
            p.add_nest(Nest {
                name: "oob_offset".into(),
                ops: vec![OpKind::Map],
                extents: vec![l],
                // Reads x[t + l·magnitude]: out of range at every point.
                reads: vec![Read::plain(
                    x,
                    AccessSpec::new(vec![AxisExpr::shifted(0, l as i64 * magnitude)]),
                )],
                writes: vec![Write {
                    buffer: y,
                    access: AccessSpec::identity(1),
                }],
                udf,
            })?;
        }
        MutationClass::EmptyDimension => {
            let x = p.input("x", &[l], &[1, 2]);
            let y = p.output("y", &[l], &[1, 2]);
            p.add_nest(Nest {
                name: "empty_dim".into(),
                ops: vec![OpKind::Map],
                extents: vec![0],
                reads: vec![Read::plain(x, AccessSpec::identity(1))],
                writes: vec![Write {
                    buffer: y,
                    access: AccessSpec::identity(1),
                }],
                udf: scan_udf("empty_dim", 1),
            })?;
        }
        MutationClass::DependenceCycle => {
            let x = p.input("x", &[l], &[1, 2]);
            let y = p.output("y", &[l], &[1, 2]);
            // A shift of `l` or more leaves the iteration domain entirely
            // (every carried read resolves to its initializer), which
            // dissolves the cycle — clamp so the mutation is never vacuous.
            let shift = magnitude.min(l as i64 - 1);
            p.add_nest(Nest {
                name: "dep_cycle".into(),
                ops: vec![OpKind::ScanL],
                extents: vec![l],
                reads: vec![
                    Read::plain(x, AccessSpec::identity(1)),
                    // Forward-carried...
                    Read::carried(
                        y,
                        AccessSpec::new(vec![AxisExpr::shifted(0, -shift)]),
                        CarriedInit::Zero,
                    ),
                    // ...and backward-carried on the same dim.
                    Read::carried(
                        y,
                        AccessSpec::new(vec![AxisExpr::shifted(0, shift)]),
                        CarriedInit::Zero,
                    ),
                ],
                writes: vec![Write {
                    buffer: y,
                    access: AccessSpec::identity(1),
                }],
                udf: scan_udf("dep_cycle", 3),
            })?;
        }
    }
    Ok(p)
}

/// Inputs matching [`mutated_program`]'s single `x` input buffer.
pub fn mutated_inputs(l: usize, seed: u64) -> HashMap<BufferId, FractalTensor> {
    let l = l.max(2);
    let x = FractalTensor::from_flat(&Tensor::randn(&[l, 1, 2], seed), 1)
        .expect("well-formed input tensor");
    let mut m = HashMap::new();
    m.insert(BufferId(0), x);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Strategy::ALL.iter().map(|s| s.short()).collect();
        assert_eq!(labels.len(), Strategy::ALL.len());
    }
}
