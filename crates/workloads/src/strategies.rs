//! Execution strategies and shared simulator plumbing.
//!
//! Each enum variant models one §6 baseline's *execution structure* — how
//! the same mathematical workload is cut into kernels and what crosses each
//! memory level — per the substitution table in `DESIGN.md`.

use ft_sim::{GpuConfig, SimMachine, TrafficCounters};

/// An execution strategy for a workload on the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One materialized kernel per tensor operator; every intermediate
    /// round-trips through DRAM (PyTorch / TensorFlow DAG execution).
    Eager,
    /// Elementwise chains fused into the preceding GEMM, but no fusion
    /// across loop-carried boundaries and gather/concat data movement is
    /// materialized (TVM-like DSL scope).
    FusedOp,
    /// Hand-tiled single-cell kernels: intermediates of one cell stay in
    /// shared memory, but cells launch separately and no cross-cell
    /// wavefront exists (Triton-like block programming).
    BlockTile,
    /// A handcrafted wavefront over the whole network in one low-level
    /// program (cuDNN's stacked-RNN approach; CUTLASS/cuBLAS for GEMMs,
    /// FlashAttention-2 for attention).
    Handcrafted,
    /// The FractalTensor schedule: whatever the compiler pipeline actually
    /// produced (wavefront structure, fused launch groups, reuse staging).
    FractalTensor,
}

impl Strategy {
    /// All strategies, for sweep loops.
    pub const ALL: [Strategy; 5] = [
        Strategy::Eager,
        Strategy::FusedOp,
        Strategy::BlockTile,
        Strategy::Handcrafted,
        Strategy::FractalTensor,
    ];

    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Eager => "PyTorch/TF (eager DAG)",
            Strategy::FusedOp => "TVM (fused ops)",
            Strategy::BlockTile => "Triton (block tiles)",
            Strategy::Handcrafted => "handcrafted (cuDNN/cuBLAS/FA-2)",
            Strategy::FractalTensor => "FractalTensor",
        }
    }

    /// Short label for table columns.
    pub fn short(&self) -> &'static str {
        match self {
            Strategy::Eager => "eager",
            Strategy::FusedOp => "fused",
            Strategy::BlockTile => "blocktile",
            Strategy::Handcrafted => "handcrafted",
            Strategy::FractalTensor => "fractaltensor",
        }
    }
}

/// The outcome of simulating one workload under one strategy.
#[derive(Debug, Clone, Copy)]
pub struct SimReport {
    /// Modeled end-to-end time, milliseconds.
    pub ms: f64,
    /// Per-level traffic totals.
    pub traffic: TrafficCounters,
    /// Kernel launches issued.
    pub kernels: u64,
}

impl SimReport {
    /// Collects the report from a machine after a strategy ran on it.
    pub fn from_machine(m: &SimMachine) -> Self {
        SimReport {
            ms: m.elapsed_ms(),
            traffic: m.counters(),
            kernels: m.kernels_launched(),
        }
    }
}

/// A fresh A100-shaped machine.
pub fn machine() -> SimMachine {
    SimMachine::new(GpuConfig::a100())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> =
            Strategy::ALL.iter().map(|s| s.short()).collect();
        assert_eq!(labels.len(), Strategy::ALL.len());
    }
}
