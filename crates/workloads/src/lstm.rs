//! Stacked LSTM (paper Listing 2; Table 6: batch 256, depth 32).
//!
//! The cell follows the listing: gates from `x@W + h@U + b`, then
//! `c' = f⊙c + i⊙tanh(g)` and `h' = o⊙tanh(c')`. The FractalTensor program
//! is one depth-3 nest over `(batch, layer, step)` whose two output buffers
//! (`h`, `c`) are self-read at layer-1 and step-1 offsets; the parser
//! splits it into the 4 block nodes §6.3 reports.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_sim::{Region, TileConfig};
use ft_tensor::Tensor;

use crate::strategies::{machine, SimReport, Strategy};

/// Shape of a stacked LSTM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LstmShape {
    /// Batch size (N).
    pub batch: usize,
    /// Hidden width (H).
    pub hidden: usize,
    /// Stack depth (D).
    pub depth: usize,
    /// Sequence length (L).
    pub seq: usize,
}

impl LstmShape {
    /// Table 6 configuration: batch 256, depth 32 (hidden 256, seq 64 — the
    /// paper's "middle" model of Figure 8).
    pub fn paper() -> Self {
        LstmShape {
            batch: 256,
            hidden: 256,
            depth: 32,
            seq: 64,
        }
    }

    /// Figure 8's "large" model: hidden 1024.
    pub fn paper_large() -> Self {
        LstmShape {
            hidden: 1024,
            ..LstmShape::paper()
        }
    }

    /// A tiny shape for correctness tests.
    pub fn tiny() -> Self {
        LstmShape {
            batch: 2,
            hidden: 4,
            depth: 3,
            seq: 5,
        }
    }

    /// FLOPs of one LSTM cell over the whole batch (two GEMMs dominate).
    pub fn cell_flops(&self) -> u64 {
        let (n, h) = (self.batch as u64, self.hidden as u64);
        2 * 2 * n * h * (4 * h) + 10 * n * h
    }
}

/// Buffer ids of [`program`]'s declarations, in order.
pub mod buffers {
    use ft_core::BufferId;
    /// Input sequences `[N, L]` of `[1, H]`.
    pub const XSS: BufferId = BufferId(0);
    /// Input weights `[D]` of `[H, 4H]`.
    pub const WSS: BufferId = BufferId(1);
    /// Recurrent weights `[D]` of `[H, 4H]`.
    pub const USS: BufferId = BufferId(2);
    /// Biases `[D]` of `[1, 4H]`.
    pub const BSS: BufferId = BufferId(3);
    /// Hidden states `[N, D, L]` of `[1, H]` (output).
    pub const HSSS: BufferId = BufferId(4);
    /// Cell states `[N, D, L]` of `[1, H]` (output).
    pub const CSSS: BufferId = BufferId(5);
}

/// Builds the Listing 2 program.
pub fn program(s: LstmShape) -> Program {
    let (n, h, d, l) = (s.batch, s.hidden, s.depth, s.seq);
    let mut p = Program::new("stacked_lstm");
    let xss = p.input("xss", &[n, l], &[1, h]);
    let wss = p.input("wss", &[d], &[h, 4 * h]);
    let uss = p.input("uss", &[d], &[h, 4 * h]);
    let bss = p.input("bss", &[d], &[1, 4 * h]);
    let hsss = p.output("hsss", &[n, d, l], &[1, h]);
    let csss = p.output("csss", &[n, d, l], &[1, h]);

    // The cell UDF (inputs: x, W, U, b, h, c).
    let mut bld = UdfBuilder::new("lstm_cell", 6);
    let (x, w, u, b, hp, cp) = (
        bld.input(0),
        bld.input(1),
        bld.input(2),
        bld.input(3),
        bld.input(4),
        bld.input(5),
    );
    let xw = bld.matmul(x, w);
    let hu = bld.matmul(hp, u);
    let s1 = bld.add(xw, hu);
    let g = bld.add(s1, b);
    let gi = bld.slice(g, 1, 0, h);
    let gf = bld.slice(g, 1, h, 2 * h);
    let go = bld.slice(g, 1, 2 * h, 3 * h);
    let gg = bld.slice(g, 1, 3 * h, 4 * h);
    let i = bld.sigmoid(gi);
    let f = bld.sigmoid(gf);
    let o = bld.sigmoid(go);
    let gt = bld.tanh(gg);
    let fc = bld.mul(f, cp);
    let ig = bld.mul(i, gt);
    let c2 = bld.add(fc, ig);
    let tc = bld.tanh(c2);
    let h2 = bld.mul(o, tc);
    let udf = bld.build(&[h2, c2]);

    let nest = Nest {
        name: "stacked_lstm".into(),
        ops: vec![OpKind::Map, OpKind::FoldL, OpKind::ScanL],
        extents: vec![n, d, l],
        reads: vec![
            // x: the layer below's hidden state; layer 0 reads the input.
            Read::carried(
                hsss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::shifted(1, -1),
                    AxisExpr::var(2),
                ]),
                CarriedInit::Buffer(
                    xss,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(2)]),
                ),
            ),
            Read::plain(wss, AccessSpec::new(vec![AxisExpr::var(1)])),
            Read::plain(uss, AccessSpec::new(vec![AxisExpr::var(1)])),
            Read::plain(bss, AccessSpec::new(vec![AxisExpr::var(1)])),
            // h, c: this layer's previous step, zero-initialized.
            Read::carried(
                hsss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::var(1),
                    AxisExpr::shifted(2, -1),
                ]),
                CarriedInit::Zero,
            ),
            Read::carried(
                csss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::var(1),
                    AxisExpr::shifted(2, -1),
                ]),
                CarriedInit::Zero,
            ),
        ],
        writes: vec![
            Write {
                buffer: hsss,
                access: AccessSpec::identity(3),
            },
            Write {
                buffer: csss,
                access: AccessSpec::identity(3),
            },
        ],
        udf,
    };
    p.add_nest(nest).expect("stacked LSTM nest is well-formed");
    p
}

/// Deterministic inputs for a shape.
pub fn inputs(s: LstmShape, seed: u64) -> HashMap<BufferId, FractalTensor> {
    let (n, h, d, l) = (s.batch, s.hidden, s.depth, s.seq);
    let scale = 1.0 / (h as f32).sqrt();
    let mut m = HashMap::new();
    m.insert(
        buffers::XSS,
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).expect("xss"),
    );
    m.insert(
        buffers::WSS,
        FractalTensor::from_flat(
            &Tensor::randn(&[d, h, 4 * h], seed + 1).mul_scalar(scale),
            1,
        )
        .expect("wss"),
    );
    m.insert(
        buffers::USS,
        FractalTensor::from_flat(
            &Tensor::randn(&[d, h, 4 * h], seed + 2).mul_scalar(scale),
            1,
        )
        .expect("uss"),
    );
    m.insert(
        buffers::BSS,
        FractalTensor::from_flat(&Tensor::randn(&[d, 1, 4 * h], seed + 3).mul_scalar(0.1), 1)
            .expect("bss"),
    );
    m
}

/// One LSTM cell on plain tensors (shared by the eager reference).
pub fn lstm_cell(
    x: &Tensor,
    w: &Tensor,
    u: &Tensor,
    b: &Tensor,
    h: &Tensor,
    c: &Tensor,
    hidden: usize,
) -> (Tensor, Tensor) {
    let g = &(&x.matmul(w).expect("x@W") + &h.matmul(u).expect("h@U")) + b;
    let i = g.slice(1, 0, hidden).expect("slice").sigmoid();
    let f = g.slice(1, hidden, 2 * hidden).expect("slice").sigmoid();
    let o = g.slice(1, 2 * hidden, 3 * hidden).expect("slice").sigmoid();
    let gt = g.slice(1, 3 * hidden, 4 * hidden).expect("slice").tanh();
    let c2 = &(&f * c) + &(&i * &gt);
    let h2 = &o * &c2.tanh();
    (h2, c2)
}

/// Eager reference following Listing 2 with the ADT combinators: a `map`
/// over the batch, a `foldl` over the layers, a `scanl` over time.
pub fn reference(
    xss: &FractalTensor,
    wss: &FractalTensor,
    uss: &FractalTensor,
    bss: &FractalTensor,
    hidden: usize,
) -> (FractalTensor, FractalTensor) {
    let depth = wss.len();
    let run = |xss: &FractalTensor, want_h: bool| {
        xss.map(|xs| {
            let seq = xs.sub()?.clone();
            // foldl over layers, threading the whole sequence.
            let mut cur = seq;
            let mut per_layer = Vec::new();
            for di in 0..depth {
                let (w, u, b) = (wss.leaf(di)?, uss.leaf(di)?, bss.leaf(di)?);
                let states = cur.scanl_state(
                    (Tensor::zeros(&[1, hidden]), Tensor::zeros(&[1, hidden])),
                    |(h, c), x| {
                        let (h2, c2) = lstm_cell(x.leaf()?, w, u, b, h, c, hidden);
                        Ok((h2, c2))
                    },
                )?;
                let hs: Vec<Tensor> = states.iter().map(|(h, _)| h.clone()).collect();
                let cs: Vec<Tensor> = states.into_iter().map(|(_, c)| c).collect();
                per_layer.push(if want_h {
                    FractalTensor::from_tensors(hs.clone())?
                } else {
                    FractalTensor::from_tensors(cs)?
                });
                cur = FractalTensor::from_tensors(hs)?;
            }
            FractalTensor::nested(per_layer)
        })
        .expect("reference stacked LSTM")
    };
    (run(xss, true), run(xss, false))
}

/// Simulates the workload under a strategy. See `DESIGN.md` for the
/// baseline substitution rationale.
pub fn simulate(s: LstmShape, strategy: Strategy) -> SimReport {
    let (n, h, d, l) = (
        s.batch as u64,
        s.hidden as u64,
        s.depth as u64,
        s.seq as u64,
    );
    let mut m = machine();
    let fb = 4u64; // f32 bytes.
    let x_bytes = n * h * fb;
    let g_bytes = n * 4 * h * fb;
    let w_bytes = h * 4 * h * fb;

    // Device allocations.
    let x_seq = m.alloc(n * l * h * fb);
    let wss = m.alloc(d * w_bytes);
    let uss = m.alloc(d * w_bytes);
    let h_states = m.alloc(n * d * l * h * fb);
    let c_states = m.alloc(n * d * l * h * fb);
    let tmp_g = m.alloc(g_bytes); // Reused activation scratch (framework allocator).
    let tmp_g2 = m.alloc(g_bytes);

    let gemm_tile = TileConfig::select(n as usize, 4 * s.hidden, m.config().smem_per_sm_bytes);
    let cellflops = s.cell_flops();

    let x_region = |di: u64, li: u64| {
        if di == 0 {
            Region::range(x_seq, (li * n * h * fb) % x_seq.bytes(), x_bytes)
        } else {
            Region::range(
                h_states,
                ((di - 1) * l + li) * x_bytes % h_states.bytes(),
                x_bytes,
            )
        }
    };
    let state_region = |buf: ft_sim::BufferHandle, di: u64, li: u64| {
        Region::range(buf, (di * l + li) * x_bytes % buf.bytes(), x_bytes)
    };
    let weight_region =
        |buf: ft_sim::BufferHandle, di: u64| Region::range(buf, di * w_bytes, w_bytes);

    match strategy {
        Strategy::Eager | Strategy::FusedOp => {
            // Per-cell kernels in program order; FusedOp folds the
            // elementwise tail into the second GEMM.
            for di in 0..d {
                for li in 0..l {
                    let k1 = ft_sim::gemm_kernel(
                        "x@W",
                        n as usize,
                        s.hidden,
                        4 * s.hidden,
                        x_region(di, li),
                        weight_region(wss, di),
                        Region::whole(tmp_g),
                        gemm_tile,
                        true,
                    );
                    m.launch(&k1);
                    let mut k2 = ft_sim::gemm_kernel(
                        "h@U",
                        n as usize,
                        s.hidden,
                        4 * s.hidden,
                        state_region(h_states, di, li.wrapping_sub(1).min(li)),
                        weight_region(uss, di),
                        Region::whole(tmp_g2),
                        gemm_tile,
                        true,
                    );
                    if strategy == Strategy::FusedOp {
                        // Epilogue fused: reads the other GEMM's result and
                        // the carried c, writes h and c.
                        k2.reads.push(Region::whole(tmp_g));
                        k2.reads.push(state_region(c_states, di, li));
                        k2.writes.push(state_region(h_states, di, li));
                        k2.writes.push(state_region(c_states, di, li));
                        k2.flops += 10 * n * h;
                        m.launch(&k2);
                    } else {
                        m.launch(&k2);
                        // Four separate elementwise kernels: gate add,
                        // activations, c update, h update.
                        for name in ["add_bias", "activations", "c_update", "h_update"] {
                            let ke = ft_sim::elementwise_kernel(
                                name,
                                n * 4 * h,
                                vec![Region::whole(tmp_g), Region::whole(tmp_g2)],
                                vec![Region::whole(tmp_g)],
                            );
                            m.launch(&ke);
                        }
                        // Final state writes.
                        let kw = ft_sim::elementwise_kernel(
                            "write_states",
                            2 * n * h,
                            vec![Region::whole(tmp_g)],
                            vec![
                                state_region(h_states, di, li),
                                state_region(c_states, di, li),
                            ],
                        );
                        m.launch(&kw);
                    }
                }
            }
        }
        Strategy::BlockTile => {
            // One fused cell kernel per (layer, step); the gate tensor
            // lives in shared memory.
            for di in 0..d {
                for li in 0..l {
                    let k = ft_sim::Kernel {
                        name: "lstm_cell".into(),
                        flops: cellflops,
                        tensor_cores: true,
                        reads: vec![
                            x_region(di, li),
                            weight_region(wss, di),
                            weight_region(uss, di),
                            state_region(h_states, di, li),
                            state_region(c_states, di, li),
                        ],
                        writes: vec![
                            state_region(h_states, di, li),
                            state_region(c_states, di, li),
                        ],
                        l1_extra_bytes: 2 * g_bytes + 2 * cellflops / 4,
                        ctas: (n / 16).max(1),
                        smem_per_cta: gemm_tile.smem_bytes(),
                    };
                    m.launch(&k);
                }
            }
        }
        Strategy::Handcrafted | Strategy::FractalTensor => {
            // Wavefront over (layer, step): D + L - 1 launches, each
            // covering every cell on the anti-diagonal. The FractalTensor
            // variant is parameterized by the *actual* compiled schedule
            // and keeps weights staged (reuse analysis), so repeated
            // weight reads stay in shared memory.
            let steps = if strategy == Strategy::FractalTensor {
                let c = ft_passes::compile(&program(s)).expect("stacked LSTM compiles");
                assert_eq!(c.groups.len(), 1, "one launch group expected");
                c.groups[0].wavefront_steps() as u64
            } else {
                d + l - 1
            };
            for step in 0..steps {
                // Cells on this anti-diagonal.
                let width = (step + 1).min(d).min(l).min(d + l - 1 - step);
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                let lo_d = step.saturating_sub(l - 1);
                for di in lo_d..(lo_d + width) {
                    let li = step - di;
                    reads.push(x_region(di, li));
                    reads.push(state_region(h_states, di, li));
                    reads.push(state_region(c_states, di, li));
                    if strategy == Strategy::Handcrafted || step == di {
                        // cuDNN re-requests weights per step (L2-resident);
                        // FractalTensor stages them once per layer.
                        reads.push(weight_region(wss, di));
                        reads.push(weight_region(uss, di));
                    }
                    writes.push(state_region(h_states, di, li));
                    writes.push(state_region(c_states, di, li));
                }
                let k = ft_sim::Kernel {
                    name: format!("wavefront_step_{step}"),
                    flops: width * cellflops,
                    tensor_cores: true,
                    reads,
                    writes: writes.clone(),
                    l1_extra_bytes: width * (2 * g_bytes + 2 * cellflops / 4),
                    ctas: width * (n / 16).max(1),
                    smem_per_cta: gemm_tile.smem_bytes(),
                };
                m.launch(&k);
                if strategy == Strategy::Handcrafted {
                    // cuDNN's non-persistent mode runs the pointwise gate
                    // update as a second kernel per step, with the gate
                    // tensor round-tripping device memory; FractalTensor
                    // fuses it into the macro-kernel.
                    let kp = ft_sim::elementwise_kernel(
                        "cudnn_pointwise",
                        width * 6 * n * h,
                        vec![Region::whole(tmp_g)],
                        writes,
                    );
                    m.launch(&kp);
                }
            }
        }
    }
    SimReport::from_machine(&m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    #[test]
    fn program_parses_into_four_block_nodes() {
        // §6.3: "the stacked LSTM is represented by 4 block nodes".
        let p = program(LstmShape::tiny());
        let g = ft_etdg::parse_program(&p).unwrap();
        assert_eq!(g.blocks.len(), 4);
    }

    #[test]
    fn interpreter_matches_eager_reference() {
        let s = LstmShape::tiny();
        let p = program(s);
        let ins = inputs(s, 42);
        let out = run_program(&p, &ins).unwrap();
        let (h_ref, c_ref) = reference(
            &ins[&buffers::XSS],
            &ins[&buffers::WSS],
            &ins[&buffers::USS],
            &ins[&buffers::BSS],
            s.hidden,
        );
        assert_allclose(
            &out[&buffers::HSSS].to_flat().unwrap(),
            &h_ref.to_flat().unwrap(),
            1e-4,
        );
        assert_allclose(
            &out[&buffers::CSSS].to_flat().unwrap(),
            &c_ref.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn compiled_wavefront_matches_reference() {
        let s = LstmShape::tiny();
        let p = program(s);
        let ins = inputs(s, 7);
        let compiled = compile(&p).unwrap();
        // The whole network is one wavefront group with D + L - 1 steps.
        assert_eq!(compiled.groups.len(), 1);
        assert_eq!(
            compiled.groups[0].wavefront_steps(),
            (s.depth + s.seq - 1) as i64
        );
        let got = execute(&compiled, &ins, 4).unwrap();
        let (h_ref, _) = reference(
            &ins[&buffers::XSS],
            &ins[&buffers::WSS],
            &ins[&buffers::USS],
            &ins[&buffers::BSS],
            s.hidden,
        );
        assert_allclose(
            &got[&buffers::HSSS].to_flat().unwrap(),
            &h_ref.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn wavefront_beats_eager_in_simulation() {
        let s = LstmShape {
            batch: 64,
            hidden: 64,
            depth: 8,
            seq: 16,
        };
        let eager = simulate(s, Strategy::Eager);
        let ft = simulate(s, Strategy::FractalTensor);
        let cudnn = simulate(s, Strategy::Handcrafted);
        assert!(ft.ms < eager.ms, "ft {} vs eager {}", ft.ms, eager.ms);
        assert!(ft.ms <= cudnn.ms * 1.05);
        // Launch counts: eager is per-op, wavefront is per-step.
        assert!(eager.kernels > 10 * ft.kernels);
        assert_eq!(ft.kernels as usize, s.depth + s.seq - 1);
    }

    #[test]
    fn eager_time_grows_multiplicatively_with_depth() {
        // The Figure 2 phenomenon: eager scales with D*L, the wavefront
        // with D + L.
        let base = LstmShape {
            batch: 32,
            hidden: 32,
            depth: 4,
            seq: 16,
        };
        let deep = LstmShape { depth: 16, ..base };
        let e1 = simulate(base, Strategy::Eager).ms;
        let e2 = simulate(deep, Strategy::Eager).ms;
        let f1 = simulate(base, Strategy::FractalTensor).ms;
        let f2 = simulate(deep, Strategy::FractalTensor).ms;
        // Eager grows ~4x; the wavefront grows ~(16+15)/(4+15) ≈ 1.6x.
        assert!(e2 / e1 > 3.0, "eager ratio {}", e2 / e1);
        assert!(f2 / f1 < 2.2, "ft ratio {}", f2 / f1);
    }
}
