//! Stacked grid RNNs (paper Table 6: batch 256, depth 32).
//!
//! A grid RNN lays cells on a 2-D grid; cell `(i, j)` consumes the hidden
//! states of `(i-1, j)` and `(i, j-1)` plus the layer below's output,
//! giving three carried dependencies per layer stack — which is why §6.3
//! reports the stacked grid RNN parses into 8 block nodes (2³ boundary
//! regions).

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_sim::{Region, TileConfig};
use ft_tensor::Tensor;

use crate::strategies::{machine, SimReport, Strategy};

/// Shape of a stacked grid RNN run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridShape {
    /// Batch size.
    pub batch: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Stack depth.
    pub depth: usize,
    /// Grid extent along the first direction.
    pub rows: usize,
    /// Grid extent along the second direction.
    pub cols: usize,
}

impl GridShape {
    /// Table 6 configuration: batch 256, depth 32 over an 8x8 grid
    /// (middle-model hidden 256).
    pub fn paper() -> Self {
        GridShape {
            batch: 256,
            hidden: 256,
            depth: 32,
            rows: 8,
            cols: 8,
        }
    }

    /// Tiny correctness shape.
    pub fn tiny() -> Self {
        GridShape {
            batch: 2,
            hidden: 4,
            depth: 2,
            rows: 3,
            cols: 4,
        }
    }

    /// FLOPs of one grid cell over the batch (three GEMMs).
    pub fn cell_flops(&self) -> u64 {
        let (n, h) = (self.batch as u64, self.hidden as u64);
        3 * 2 * n * h * h + 4 * n * h
    }
}

/// Buffer ids of [`program`]'s declarations.
pub mod buffers {
    use ft_core::BufferId;
    /// Grid inputs `[N, R, C]` of `[1, H]`.
    pub const XSS: BufferId = BufferId(0);
    /// Input-transform weights `[D]`.
    pub const W: BufferId = BufferId(1);
    /// Row-direction recurrent weights `[D]`.
    pub const U1: BufferId = BufferId(2);
    /// Column-direction recurrent weights `[D]`.
    pub const U2: BufferId = BufferId(3);
    /// Hidden states `[N, D, R, C]` of `[1, H]` (output).
    pub const HSSS: BufferId = BufferId(4);
}

/// Builds the stacked grid RNN program: one depth-4 nest over
/// `(batch, layer, row, col)` with three carried reads.
pub fn program(s: GridShape) -> Program {
    let (n, h, d, r, c) = (s.batch, s.hidden, s.depth, s.rows, s.cols);
    let mut p = Program::new("stacked_grid_rnn");
    let xss = p.input("xss", &[n, r, c], &[1, h]);
    let w = p.input("w", &[d], &[h, h]);
    let u1 = p.input("u1", &[d], &[h, h]);
    let u2 = p.input("u2", &[d], &[h, h]);
    let hsss = p.output("hsss", &[n, d, r, c], &[1, h]);

    // Cell: y = tanh(x@W + hi@U1 + hj@U2).
    let mut bld = UdfBuilder::new("grid_cell", 6);
    let (x, wm, u1m, u2m, hi, hj) = (
        bld.input(0),
        bld.input(1),
        bld.input(2),
        bld.input(3),
        bld.input(4),
        bld.input(5),
    );
    let xw = bld.matmul(x, wm);
    let iw = bld.matmul(hi, u1m);
    let jw = bld.matmul(hj, u2m);
    let s1 = bld.add(xw, iw);
    let s2 = bld.add(s1, jw);
    let y = bld.tanh(s2);
    let udf = bld.build(&[y]);

    p.add_nest(Nest {
        name: "stacked_grid_rnn".into(),
        ops: vec![OpKind::Map, OpKind::FoldL, OpKind::ScanL, OpKind::ScanL],
        extents: vec![n, d, r, c],
        reads: vec![
            // x: layer below at (row, col); layer 0 reads the grid input.
            Read::carried(
                hsss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::shifted(1, -1),
                    AxisExpr::var(2),
                    AxisExpr::var(3),
                ]),
                CarriedInit::Buffer(
                    xss,
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(2), AxisExpr::var(3)]),
                ),
            ),
            Read::plain(w, AccessSpec::new(vec![AxisExpr::var(1)])),
            Read::plain(u1, AccessSpec::new(vec![AxisExpr::var(1)])),
            Read::plain(u2, AccessSpec::new(vec![AxisExpr::var(1)])),
            // Row-direction state.
            Read::carried(
                hsss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::var(1),
                    AxisExpr::shifted(2, -1),
                    AxisExpr::var(3),
                ]),
                CarriedInit::Zero,
            ),
            // Column-direction state.
            Read::carried(
                hsss,
                AccessSpec::new(vec![
                    AxisExpr::var(0),
                    AxisExpr::var(1),
                    AxisExpr::var(2),
                    AxisExpr::shifted(3, -1),
                ]),
                CarriedInit::Zero,
            ),
        ],
        writes: vec![Write {
            buffer: hsss,
            access: AccessSpec::identity(4),
        }],
        udf,
    })
    .expect("grid RNN nest is well-formed");
    p
}

/// Deterministic inputs.
pub fn inputs(s: GridShape, seed: u64) -> HashMap<BufferId, FractalTensor> {
    let (n, h, d, r, c) = (s.batch, s.hidden, s.depth, s.rows, s.cols);
    let scale = 1.0 / (h as f32).sqrt();
    let mut m = HashMap::new();
    m.insert(
        buffers::XSS,
        FractalTensor::from_flat(&Tensor::randn(&[n, r, c, 1, h], seed), 3).expect("xss"),
    );
    for (id, sd) in [(buffers::W, 1u64), (buffers::U1, 2), (buffers::U2, 3)] {
        m.insert(
            id,
            FractalTensor::from_flat(&Tensor::randn(&[d, h, h], seed + sd).mul_scalar(scale), 1)
                .expect("weights"),
        );
    }
    m
}

/// Eager reference: per batch item, per layer, a row-major grid sweep.
pub fn reference(
    xss: &FractalTensor,
    w: &FractalTensor,
    u1: &FractalTensor,
    u2: &FractalTensor,
    s: GridShape,
) -> FractalTensor {
    xss.map(|grid_in| {
        let grid_in = grid_in.sub()?;
        let mut below: Vec<Vec<Tensor>> = (0..s.rows)
            .map(|i| {
                (0..s.cols)
                    .map(|j| grid_in.get(i)?.leaf(j).cloned())
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<_, _>>()?;
        let mut layers = Vec::with_capacity(s.depth);
        for d in 0..s.depth {
            let (wm, u1m, u2m) = (w.leaf(d)?, u1.leaf(d)?, u2.leaf(d)?);
            let mut h: Vec<Vec<Tensor>> = vec![Vec::with_capacity(s.cols); s.rows];
            for i in 0..s.rows {
                for j in 0..s.cols {
                    let hi = if i > 0 {
                        h[i - 1][j].clone()
                    } else {
                        Tensor::zeros(&[1, s.hidden])
                    };
                    let hj = if j > 0 {
                        h[i][j - 1].clone()
                    } else {
                        Tensor::zeros(&[1, s.hidden])
                    };
                    let v = below[i][j]
                        .matmul(wm)
                        .and_then(|xw| hi.matmul(u1m).and_then(|a| xw.add(&a)))
                        .and_then(|t| hj.matmul(u2m).and_then(|b| t.add(&b)))
                        .expect("grid cell")
                        .tanh();
                    h[i].push(v);
                }
            }
            layers.push(FractalTensor::nested(
                h.iter()
                    .map(|row| FractalTensor::from_tensors(row.clone()))
                    .collect::<Result<Vec<_>, _>>()?,
            )?);
            below = h;
        }
        FractalTensor::nested(layers)
    })
    .expect("reference grid RNN")
}

/// Simulates one strategy; `None` for the unsupported handcrafted library
/// (no vendor grid-RNN kernel exists — the paper's NST case).
pub fn simulate(s: GridShape, strategy: Strategy) -> Option<SimReport> {
    if strategy == Strategy::Handcrafted {
        return None;
    }
    let (n, h, d) = (s.batch as u64, s.hidden as u64, s.depth as u64);
    let (r, c) = (s.rows as u64, s.cols as u64);
    let mut m = machine();
    let fb = 4u64;
    let x_bytes = n * h * fb;
    let w_bytes = h * h * fb;
    let x_grid = m.alloc(n * r * c * h * fb);
    let weights = m.alloc(3 * d * w_bytes);
    let states = m.alloc(d * r * c * x_bytes);
    let tmp = m.alloc(x_bytes);
    let tile = TileConfig::select(n as usize, s.hidden, m.config().smem_per_sm_bytes);
    let cellflops = s.cell_flops();

    let cell_idx = |di: u64, i: u64, j: u64| (di * r * c + i * c + j) * x_bytes;
    let x_region = |di: u64, i: u64, j: u64| {
        if di == 0 {
            Region::range(x_grid, (i * c + j) * x_bytes, x_bytes)
        } else {
            Region::range(states, cell_idx(di - 1, i, j), x_bytes)
        }
    };

    match strategy {
        Strategy::Eager | Strategy::FusedOp => {
            let per_cell = if strategy == Strategy::Eager { 6 } else { 3 };
            for di in 0..d {
                for i in 0..r {
                    for j in 0..c {
                        for _ in 0..per_cell {
                            let k = ft_sim::gemm_kernel(
                                "grid_op",
                                n as usize,
                                s.hidden,
                                s.hidden,
                                x_region(di, i, j),
                                Region::range(weights, di * 3 * w_bytes, w_bytes),
                                Region::whole(tmp),
                                tile,
                                true,
                            );
                            m.launch(&k);
                        }
                    }
                }
            }
        }
        Strategy::BlockTile => {
            for di in 0..d {
                for i in 0..r {
                    for j in 0..c {
                        let k = ft_sim::Kernel {
                            name: "grid_cell".into(),
                            flops: cellflops,
                            tensor_cores: true,
                            reads: vec![
                                x_region(di, i, j),
                                Region::range(weights, di * 3 * w_bytes, 3 * w_bytes),
                                Region::range(
                                    states,
                                    cell_idx(di, i.saturating_sub(1), j),
                                    x_bytes,
                                ),
                                Region::range(
                                    states,
                                    cell_idx(di, i, j.saturating_sub(1)),
                                    x_bytes,
                                ),
                            ],
                            writes: vec![Region::range(states, cell_idx(di, i, j), x_bytes)],
                            l1_extra_bytes: 3 * x_bytes + cellflops / 2,
                            ctas: (n / 16).max(1),
                            smem_per_cta: tile.smem_bytes(),
                        };
                        m.launch(&k);
                    }
                }
            }
        }
        Strategy::FractalTensor => {
            // One wavefront over layer+row+col: D + R + C - 2 steps.
            let compiled = ft_passes::compile(&program(s)).expect("grid RNN compiles");
            assert_eq!(compiled.groups.len(), 1);
            let steps = compiled.groups[0].wavefront_steps() as u64;
            for step in 0..steps {
                // Cells with di + i + j == step.
                let mut width = 0u64;
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                for di in 0..d.min(step + 1) {
                    let rem = step - di;
                    for i in 0..r.min(rem + 1) {
                        let j = rem - i;
                        if j >= c {
                            continue;
                        }
                        width += 1;
                        reads.push(x_region(di, i, j));
                        writes.push(Region::range(states, cell_idx(di, i, j), x_bytes));
                    }
                }
                if width == 0 {
                    continue;
                }
                if step < d {
                    reads.push(Region::range(weights, step * 3 * w_bytes, 3 * w_bytes));
                }
                let k = ft_sim::Kernel {
                    name: format!("grid_wavefront_{step}"),
                    flops: width * cellflops,
                    tensor_cores: true,
                    reads,
                    writes,
                    l1_extra_bytes: width * (3 * x_bytes + cellflops / 2),
                    ctas: width * (n / 16).max(1),
                    smem_per_cta: tile.smem_bytes(),
                };
                m.launch(&k);
            }
        }
        Strategy::Handcrafted => unreachable!("filtered above"),
    }
    Some(SimReport::from_machine(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    #[test]
    fn program_parses_into_eight_block_nodes() {
        // §6.3: "the stacked Grid RNN is represented by 8 block nodes".
        let g = ft_etdg::parse_program(&program(GridShape::tiny())).unwrap();
        assert_eq!(g.blocks.len(), 8);
    }

    #[test]
    fn interpreter_matches_eager_reference() {
        let s = GridShape::tiny();
        let ins = inputs(s, 31);
        let out = run_program(&program(s), &ins).unwrap();
        let expected = reference(
            &ins[&buffers::XSS],
            &ins[&buffers::W],
            &ins[&buffers::U1],
            &ins[&buffers::U2],
            s,
        );
        assert_allclose(
            &out[&buffers::HSSS].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn compiled_wavefront_matches_reference() {
        let s = GridShape::tiny();
        let ins = inputs(s, 33);
        let compiled = compile(&program(s)).unwrap();
        assert_eq!(compiled.groups.len(), 1);
        // The 3-D wavefront: D + R + C - 2 steps.
        assert_eq!(
            compiled.groups[0].wavefront_steps(),
            (s.depth + s.rows + s.cols - 2) as i64
        );
        let got = execute(&compiled, &ins, 4).unwrap();
        let expected = reference(
            &ins[&buffers::XSS],
            &ins[&buffers::W],
            &ins[&buffers::U1],
            &ins[&buffers::U2],
            s,
        );
        assert_allclose(
            &got[&buffers::HSSS].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn simulation_orders_strategies() {
        let s = GridShape {
            batch: 64,
            hidden: 64,
            depth: 4,
            rows: 4,
            cols: 4,
        };
        assert!(simulate(s, Strategy::Handcrafted).is_none());
        let eager = simulate(s, Strategy::Eager).unwrap();
        let blocktile = simulate(s, Strategy::BlockTile).unwrap();
        let ft = simulate(s, Strategy::FractalTensor).unwrap();
        assert!(ft.ms < blocktile.ms);
        assert!(blocktile.ms < eager.ms);
    }
}
