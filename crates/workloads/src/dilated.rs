//! Stacked dilated RNNs (paper Table 6: batch 256, dilation 1..32).
//!
//! Layer `d` carries its recurrence across a dilation of `2^d` steps
//! (`h_t = tanh(x_t @ Wx + h_{t-2^d} @ Wh)`), which the FractalTensor
//! program expresses as a *constantly strided* carried self-read — the
//! access-operator case where the paper notes the dependence distance is
//! adjusted from 1 to the stride. Each layer is one nest; width-wise
//! coarsening fuses the whole stack into a single launch group.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_sim::{Region, TileConfig};
use ft_tensor::Tensor;

use crate::strategies::{machine, SimReport, Strategy};

/// Shape of a stacked dilated RNN run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DilatedShape {
    /// Batch size.
    pub batch: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of layers (layer `d` has dilation `2^d`).
    pub depth: usize,
    /// Sequence length.
    pub seq: usize,
}

impl DilatedShape {
    /// Table 6 configuration: batch 256, dilations 1..32 (6 layers),
    /// middle-model hidden 256.
    pub fn paper() -> Self {
        DilatedShape {
            batch: 256,
            hidden: 256,
            depth: 6,
            seq: 64,
        }
    }

    /// Tiny correctness shape.
    pub fn tiny() -> Self {
        DilatedShape {
            batch: 2,
            hidden: 4,
            depth: 3,
            seq: 9,
        }
    }

    /// Dilation of layer `d`.
    pub fn dilation(&self, d: usize) -> usize {
        1 << d
    }

    /// FLOPs of one cell over the batch.
    pub fn cell_flops(&self) -> u64 {
        let (n, h) = (self.batch as u64, self.hidden as u64);
        2 * 2 * n * h * h + 3 * n * h
    }
}

/// Buffer ids: `XSS = 0`, `WX = 1`, `WH = 2`, layer outputs follow, the
/// last layer being the program output.
pub mod buffers {
    use ft_core::BufferId;
    /// Input sequences.
    pub const XSS: BufferId = BufferId(0);
    /// Input-transform weights, one per layer.
    pub const WX: BufferId = BufferId(1);
    /// Recurrent weights, one per layer.
    pub const WH: BufferId = BufferId(2);
    /// Output buffer of layer `d` (0-based) in a `depth`-layer program.
    pub fn layer(d: usize) -> BufferId {
        BufferId(3 + d)
    }
}

/// Builds the stacked dilated RNN program: one nest per layer, chained.
pub fn program(s: DilatedShape) -> Program {
    let (n, h, l) = (s.batch, s.hidden, s.seq);
    let mut p = Program::new("stacked_dilated_rnn");
    let xss = p.input("xss", &[n, l], &[1, h]);
    let wx = p.input("wx", &[s.depth], &[h, h]);
    let wh = p.input("wh", &[s.depth], &[h, h]);
    let mut layer_bufs = Vec::with_capacity(s.depth);
    for d in 0..s.depth {
        let name = format!("y{d}");
        let buf = if d + 1 == s.depth {
            p.output(&name, &[n, l], &[1, h])
        } else {
            p.intermediate(&name, &[n, l], &[1, h])
        };
        layer_bufs.push(buf);
    }

    for d in 0..s.depth {
        let dil = s.dilation(d) as i64;
        // Cell: y = tanh(x @ Wx + h_{t-dil} @ Wh).
        let mut bld = UdfBuilder::new(&format!("dilated_cell_{d}"), 4);
        let (x, wxm, whm, hprev) = (bld.input(0), bld.input(1), bld.input(2), bld.input(3));
        let xw = bld.matmul(x, wxm);
        let hw = bld.matmul(hprev, whm);
        let sum = bld.add(xw, hw);
        let y = bld.tanh(sum);
        let udf2 = bld.build(&[y]);

        let x_read = if d == 0 {
            Read::plain(xss, AccessSpec::identity(2))
        } else {
            Read::plain(layer_bufs[d - 1], AccessSpec::identity(2))
        };
        p.add_nest(Nest {
            name: format!("dilated_layer_{d}"),
            ops: vec![OpKind::Map, OpKind::ScanL],
            extents: vec![n, l],
            reads: vec![
                x_read,
                Read::plain(wx, AccessSpec::new(vec![AxisExpr::constant(d as i64)])),
                Read::plain(wh, AccessSpec::new(vec![AxisExpr::constant(d as i64)])),
                Read::carried(
                    layer_bufs[d],
                    AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, -dil)]),
                    CarriedInit::Zero,
                ),
            ],
            writes: vec![Write {
                buffer: layer_bufs[d],
                access: AccessSpec::identity(2),
            }],
            udf: udf2,
        })
        .expect("dilated layer nest is well-formed");
    }
    p
}

/// Deterministic inputs.
pub fn inputs(s: DilatedShape, seed: u64) -> HashMap<BufferId, FractalTensor> {
    let (n, h, l) = (s.batch, s.hidden, s.seq);
    let scale = 1.0 / (h as f32).sqrt();
    let mut m = HashMap::new();
    m.insert(
        buffers::XSS,
        FractalTensor::from_flat(&Tensor::randn(&[n, l, 1, h], seed), 2).expect("xss"),
    );
    m.insert(
        buffers::WX,
        FractalTensor::from_flat(
            &Tensor::randn(&[s.depth, h, h], seed + 1).mul_scalar(scale),
            1,
        )
        .expect("wx"),
    );
    m.insert(
        buffers::WH,
        FractalTensor::from_flat(
            &Tensor::randn(&[s.depth, h, h], seed + 2).mul_scalar(scale),
            1,
        )
        .expect("wh"),
    );
    m
}

/// Eager reference: per layer, a strided scan over time.
pub fn reference(
    xss: &FractalTensor,
    wx: &FractalTensor,
    wh: &FractalTensor,
    s: DilatedShape,
) -> FractalTensor {
    xss.map(|xs| {
        let mut cur: Vec<Tensor> = (0..s.seq)
            .map(|t| xs.sub()?.leaf(t).cloned())
            .collect::<Result<_, _>>()?;
        for d in 0..s.depth {
            let dil = s.dilation(d);
            let (wxm, whm) = (wx.leaf(d)?, wh.leaf(d)?);
            let mut next: Vec<Tensor> = Vec::with_capacity(s.seq);
            for t in 0..s.seq {
                let xw = cur[t].matmul(wxm).expect("x@Wx");
                let hprev = if t >= dil {
                    next[t - dil].clone()
                } else {
                    Tensor::zeros(&[1, s.hidden])
                };
                let hw = hprev.matmul(whm).expect("h@Wh");
                next.push(xw.add(&hw).expect("sum").tanh());
            }
            cur = next;
        }
        FractalTensor::from_tensors(cur)
    })
    .expect("reference dilated RNN")
}

/// Simulates one strategy; `None` where the paper reports NST (cuDNN has no
/// dilated-RNN operator).
pub fn simulate(s: DilatedShape, strategy: Strategy) -> Option<SimReport> {
    if strategy == Strategy::Handcrafted {
        return None;
    }
    let (n, h, d, l) = (
        s.batch as u64,
        s.hidden as u64,
        s.depth as u64,
        s.seq as u64,
    );
    let mut m = machine();
    let fb = 4u64;
    let x_bytes = n * h * fb;
    let w_bytes = h * h * fb;
    let x_seq = m.alloc(n * l * h * fb);
    let wx = m.alloc(d * w_bytes);
    let wh = m.alloc(d * w_bytes);
    let layers = m.alloc(d * n * l * h * fb);
    let tmp = m.alloc(x_bytes);
    let tile = TileConfig::select(n as usize, s.hidden, m.config().smem_per_sm_bytes);
    let cellflops = s.cell_flops();

    let x_region = |di: u64, li: u64| {
        if di == 0 {
            Region::range(x_seq, li * x_bytes % x_seq.bytes(), x_bytes)
        } else {
            Region::range(layers, ((di - 1) * l + li) * x_bytes, x_bytes)
        }
    };
    let y_region = |di: u64, li: u64| Region::range(layers, (di * l + li) * x_bytes, x_bytes);

    match strategy {
        Strategy::Eager | Strategy::FusedOp => {
            let per_cell = if strategy == Strategy::Eager { 4 } else { 2 };
            for di in 0..d {
                for li in 0..l {
                    for ki in 0..per_cell {
                        let k = ft_sim::gemm_kernel(
                            "cell_op",
                            n as usize,
                            s.hidden,
                            s.hidden,
                            x_region(di, li),
                            Region::range(wx, di * w_bytes, w_bytes),
                            if ki + 1 == per_cell {
                                y_region(di, li)
                            } else {
                                Region::whole(tmp)
                            },
                            tile,
                            true,
                        );
                        m.launch(&k);
                    }
                }
            }
        }
        Strategy::BlockTile => {
            for di in 0..d {
                for li in 0..l {
                    let k = ft_sim::Kernel {
                        name: "dilated_cell".into(),
                        flops: cellflops,
                        tensor_cores: true,
                        reads: vec![
                            x_region(di, li),
                            Region::range(wx, di * w_bytes, w_bytes),
                            Region::range(wh, di * w_bytes, w_bytes),
                            y_region(di, li.saturating_sub(1)),
                        ],
                        writes: vec![y_region(di, li)],
                        l1_extra_bytes: 2 * x_bytes + cellflops / 2,
                        ctas: (n / 16).max(1),
                        smem_per_cta: tile.smem_bytes(),
                    };
                    m.launch(&k);
                }
            }
        }
        Strategy::FractalTensor => {
            // The compiled program fuses all layers into one group whose
            // wavefront runs over time; every step executes all D layer
            // cells (pipelined through the per-point overlay) across the
            // batch.
            let compiled = ft_passes::compile(&program(s)).expect("dilated RNN compiles");
            assert_eq!(compiled.groups.len(), 1, "layers should fuse");
            let steps = compiled.groups[0].wavefront_steps() as u64;
            for step in 0..steps {
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                for di in 0..d {
                    reads.push(x_region(di, step));
                    reads.push(y_region(
                        di,
                        step.saturating_sub(s.dilation(di as usize) as u64),
                    ));
                    if step == 0 {
                        reads.push(Region::range(wx, di * w_bytes, w_bytes));
                        reads.push(Region::range(wh, di * w_bytes, w_bytes));
                    }
                    writes.push(y_region(di, step));
                }
                let k = ft_sim::Kernel {
                    name: format!("dilated_wavefront_{step}"),
                    flops: d * cellflops,
                    tensor_cores: true,
                    reads,
                    writes,
                    l1_extra_bytes: d * (2 * x_bytes + cellflops / 2),
                    ctas: d * (n / 16).max(1),
                    smem_per_cta: tile.smem_bytes(),
                };
                m.launch(&k);
            }
        }
        Strategy::Handcrafted => unreachable!("filtered above"),
    }
    Some(SimReport::from_machine(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    fn out_buf(s: DilatedShape) -> BufferId {
        buffers::layer(s.depth - 1)
    }

    #[test]
    fn interpreter_matches_eager_reference() {
        let s = DilatedShape::tiny();
        let p = program(s);
        let ins = inputs(s, 11);
        let out = run_program(&p, &ins).unwrap();
        let expected = reference(
            &ins[&buffers::XSS],
            &ins[&buffers::WX],
            &ins[&buffers::WH],
            s,
        );
        assert_allclose(
            &out[&out_buf(s)].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn layers_fuse_into_one_wavefront_group() {
        let s = DilatedShape::tiny();
        let compiled = compile(&program(s)).unwrap();
        assert_eq!(compiled.groups.len(), 1);
        // All layer regions are members of the single group.
        assert!(compiled.groups[0].members.len() >= s.depth);
        // Wavefront over time only.
        assert_eq!(compiled.groups[0].wavefront_steps(), s.seq as i64);
    }

    #[test]
    fn compiled_matches_reference() {
        let s = DilatedShape::tiny();
        let p = program(s);
        let ins = inputs(s, 23);
        let compiled = compile(&p).unwrap();
        let got = execute(&compiled, &ins, 4).unwrap();
        let expected = reference(
            &ins[&buffers::XSS],
            &ins[&buffers::WX],
            &ins[&buffers::WH],
            s,
        );
        assert_allclose(
            &got[&out_buf(s)].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn dilation_shows_up_as_distance() {
        let s = DilatedShape::tiny();
        let g = ft_etdg::parse_program(&program(s)).unwrap();
        // Layer 2 (dilation 4): its interior region carries distance 4.
        let interior = g
            .blocks
            .iter()
            .position(|b| b.name == "dilated_layer_2/region1")
            .expect("interior region of layer 2");
        let dist = ft_passes::distance_vectors(&g, ft_etdg::BlockId(interior)).unwrap();
        assert!(dist.contains(&vec![0, 4]), "{dist:?}");
    }

    #[test]
    fn simulation_strategies_ordered_sensibly() {
        let s = DilatedShape {
            batch: 64,
            hidden: 64,
            depth: 4,
            seq: 32,
        };
        assert!(simulate(s, Strategy::Handcrafted).is_none());
        let eager = simulate(s, Strategy::Eager).unwrap();
        let ft = simulate(s, Strategy::FractalTensor).unwrap();
        assert!(ft.ms < eager.ms);
        assert!(ft.kernels < eager.kernels);
    }
}
