//! FlashAttention (paper Listing 3).
//!
//! The algorithm is a `map` over (batch, head, q-block) with a `reduce`
//! over kv-blocks whose accumulator is the online-softmax triple
//! `(m, s, o)`. In the FractalTensor program the triple is three buffers
//! self-read at kv−1 — `m` initialized to `-inf`, `s` and `o` to zero —
//! followed by a fully-parallel normalization nest. The paper's point:
//! this nesting is *not* expressible as a single-level DAG, but writing it
//! with nested compute operators makes the handcrafted kernel's blocking
//! fall out of access materialization.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_sim::Region;
use ft_tensor::{OnlineSoftmax, Tensor};

use crate::strategies::{machine, SimReport, Strategy};

/// Shape of a FlashAttention run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttnShape {
    /// Batch size.
    pub batch: usize,
    /// Head count.
    pub heads: usize,
    /// Number of query blocks.
    pub q_blocks: usize,
    /// Number of key/value blocks.
    pub kv_blocks: usize,
    /// Rows per block (the paper's 32-token tiles).
    pub block: usize,
    /// Head dimension.
    pub dh: usize,
}

impl AttnShape {
    /// The official-implementation shape of Listing 3: 32×16 heads,
    /// query length 2048, key length 4096, tiles of 32×128.
    pub fn paper() -> Self {
        AttnShape {
            batch: 32,
            heads: 16,
            q_blocks: 2048 / 32,
            kv_blocks: 4096 / 32,
            block: 32,
            dh: 128,
        }
    }

    /// Tiny correctness shape.
    pub fn tiny() -> Self {
        AttnShape {
            batch: 2,
            heads: 2,
            q_blocks: 2,
            kv_blocks: 3,
            block: 4,
            dh: 8,
        }
    }

    /// Softmax scale.
    pub fn scale(&self) -> f32 {
        1.0 / (self.dh as f32).sqrt()
    }

    /// Query tokens.
    pub fn q_len(&self) -> usize {
        self.q_blocks * self.block
    }

    /// Key/value tokens.
    pub fn kv_len(&self) -> usize {
        self.kv_blocks * self.block
    }

    /// Total attention FLOPs (two GEMMs per (q-block, kv-block) pair).
    pub fn flops(&self) -> u64 {
        let bh = (self.batch * self.heads) as u64;
        let per_pair = 2 * 2 * (self.block * self.block * self.dh) as u64;
        bh * (self.q_blocks * self.kv_blocks) as u64 * per_pair
    }
}

/// Buffer ids of [`program`]'s declarations.
pub mod buffers {
    use ft_core::BufferId;
    /// Queries `[B, H, Nq]` of `[block, dh]`.
    pub const Q: BufferId = BufferId(0);
    /// Keys `[B, H, Nkv]` of `[block, dh]`.
    pub const K: BufferId = BufferId(1);
    /// Values `[B, H, Nkv]` of `[block, dh]`.
    pub const V: BufferId = BufferId(2);
    /// Running max `[B, H, Nq, Nkv]` of `[block, 1]`.
    pub const M: BufferId = BufferId(3);
    /// Running denominator `[B, H, Nq, Nkv]` of `[block, 1]`.
    pub const S: BufferId = BufferId(4);
    /// Unnormalized output `[B, H, Nq, Nkv]` of `[block, dh]`.
    pub const O: BufferId = BufferId(5);
    /// Final attention output `[B, H, Nq]` of `[block, dh]`.
    pub const OUT: BufferId = BufferId(6);
}

/// Builds the Listing 3 program.
pub fn program(s: AttnShape) -> Program {
    let (b, h, nq, nkv, blk, dh) = (s.batch, s.heads, s.q_blocks, s.kv_blocks, s.block, s.dh);
    let mut p = Program::new("flash_attention");
    let q = p.input("qsss", &[b, h, nq], &[blk, dh]);
    let k = p.input("ksss", &[b, h, nkv], &[blk, dh]);
    let v = p.input("vsss", &[b, h, nkv], &[blk, dh]);
    let mb = p.intermediate("m", &[b, h, nq, nkv], &[blk, 1]);
    let sb = p.intermediate("s", &[b, h, nq, nkv], &[blk, 1]);
    let ob = p.intermediate("o", &[b, h, nq, nkv], &[blk, dh]);
    let out = p.output("out", &[b, h, nq], &[blk, dh]);

    // The online-softmax step (inputs: q, k, v, m_prev, s_prev, o_prev).
    let mut bld = UdfBuilder::new("flash_step", 6);
    let (qi, ki, vi, mp, sp, op) = (
        bld.input(0),
        bld.input(1),
        bld.input(2),
        bld.input(3),
        bld.input(4),
        bld.input(5),
    );
    let t1 = bld.matmul_t(qi, ki);
    let t1s = bld.scale(t1, s.scale());
    let t2 = bld.row_max(t1s);
    let mt = bld.max(t2, mp);
    let sh = bld.sub_col_bc(t1s, mt);
    let e = bld.exp(sh);
    let rs = bld.row_sum(e);
    let diff = bld.sub(mp, mt);
    let alpha = bld.exp(diff);
    let s_scaled = bld.mul(sp, alpha);
    let st = bld.add(s_scaled, rs);
    let pv = bld.matmul(e, vi);
    let o_scaled = bld.mul_col_bc(op, alpha);
    let ot = bld.add(o_scaled, pv);
    let udf = bld.build(&[mt, st, ot]);

    let carried = |buf, init| {
        Read::carried(
            buf,
            AccessSpec::new(vec![
                AxisExpr::var(0),
                AxisExpr::var(1),
                AxisExpr::var(2),
                AxisExpr::shifted(3, -1),
            ]),
            init,
        )
    };
    p.add_nest(Nest {
        name: "flash_reduce".into(),
        ops: vec![OpKind::Map, OpKind::Map, OpKind::Map, OpKind::Reduce],
        extents: vec![b, h, nq, nkv],
        reads: vec![
            Read::plain(
                q,
                AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(1), AxisExpr::var(2)]),
            ),
            Read::plain(
                k,
                AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(1), AxisExpr::var(3)]),
            ),
            Read::plain(
                v,
                AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(1), AxisExpr::var(3)]),
            ),
            carried(mb, CarriedInit::Fill(f32::NEG_INFINITY)),
            carried(sb, CarriedInit::Zero),
            carried(ob, CarriedInit::Zero),
        ],
        writes: vec![
            Write {
                buffer: mb,
                access: AccessSpec::identity(4),
            },
            Write {
                buffer: sb,
                access: AccessSpec::identity(4),
            },
            Write {
                buffer: ob,
                access: AccessSpec::identity(4),
            },
        ],
        udf,
    })
    .expect("flash reduce nest is well-formed");

    // Final normalization: out = o_last / s_last.
    let mut bld = UdfBuilder::new("flash_normalize", 2);
    let (oi, si) = (bld.input(0), bld.input(1));
    let norm = bld.div_col_bc(oi, si);
    let udf = bld.build(&[norm]);
    let last = |buf| {
        Read::plain(
            buf,
            AccessSpec::new(vec![
                AxisExpr::var(0),
                AxisExpr::var(1),
                AxisExpr::var(2),
                AxisExpr::constant(nkv as i64 - 1),
            ]),
        )
    };
    p.add_nest(Nest {
        name: "flash_normalize".into(),
        ops: vec![OpKind::Map, OpKind::Map, OpKind::Map],
        extents: vec![b, h, nq],
        reads: vec![last(ob), last(sb)],
        writes: vec![Write {
            buffer: out,
            access: AccessSpec::identity(3),
        }],
        udf,
    })
    .expect("flash normalize nest is well-formed");
    p
}

/// Deterministic inputs.
pub fn inputs(s: AttnShape, seed: u64) -> HashMap<BufferId, FractalTensor> {
    let (b, h, blk, dh) = (s.batch, s.heads, s.block, s.dh);
    let mut m = HashMap::new();
    m.insert(
        buffers::Q,
        FractalTensor::from_flat(&Tensor::randn(&[b, h, s.q_blocks, blk, dh], seed), 3).expect("q"),
    );
    m.insert(
        buffers::K,
        FractalTensor::from_flat(&Tensor::randn(&[b, h, s.kv_blocks, blk, dh], seed + 1), 3)
            .expect("k"),
    );
    m.insert(
        buffers::V,
        FractalTensor::from_flat(&Tensor::randn(&[b, h, s.kv_blocks, blk, dh], seed + 2), 3)
            .expect("v"),
    );
    m
}

/// Eager reference #1: full-softmax attention per (batch, head) on whole
/// matrices.
pub fn reference_full(
    q: &FractalTensor,
    k: &FractalTensor,
    v: &FractalTensor,
    s: AttnShape,
) -> FractalTensor {
    let assemble = |ft: &FractalTensor, b: usize, h: usize, blocks: usize| -> Tensor {
        let leaves: Vec<Tensor> = (0..blocks)
            .map(|i| ft.leaf_at(&[b, h, i]).expect("leaf").clone())
            .collect();
        Tensor::concat(&leaves, 0).expect("assemble")
    };
    let mut batches = Vec::with_capacity(s.batch);
    for b in 0..s.batch {
        let mut heads = Vec::with_capacity(s.heads);
        for h in 0..s.heads {
            let qm = assemble(q, b, h, s.q_blocks);
            let km = assemble(k, b, h, s.kv_blocks);
            let vm = assemble(v, b, h, s.kv_blocks);
            let scores = qm.matmul_transb(&km).expect("qk").mul_scalar(s.scale());
            let attn = scores
                .softmax_rows()
                .expect("softmax")
                .matmul(&vm)
                .expect("av");
            // Re-block the [q_len, dh] result.
            let blocks: Vec<Tensor> = (0..s.q_blocks)
                .map(|i| {
                    attn.slice(0, i * s.block, (i + 1) * s.block)
                        .expect("block")
                        .to_contiguous()
                })
                .collect();
            heads.push(FractalTensor::from_tensors(blocks).expect("head"));
        }
        batches.push(FractalTensor::nested(heads).expect("batch"));
    }
    FractalTensor::nested(batches).expect("output")
}

/// Eager reference #2: the online-softmax recurrence via
/// [`OnlineSoftmax`], block by block — Listing 3 executed directly.
pub fn reference_online(
    q: &FractalTensor,
    k: &FractalTensor,
    v: &FractalTensor,
    s: AttnShape,
) -> FractalTensor {
    let mut batches = Vec::with_capacity(s.batch);
    for b in 0..s.batch {
        let mut heads = Vec::with_capacity(s.heads);
        for h in 0..s.heads {
            let mut blocks = Vec::with_capacity(s.q_blocks);
            for qi in 0..s.q_blocks {
                let qb = q.leaf_at(&[b, h, qi]).expect("q block");
                let mut state = OnlineSoftmax::new(s.block, s.dh);
                for ki in 0..s.kv_blocks {
                    let kb = k.leaf_at(&[b, h, ki]).expect("k block");
                    let vb = v.leaf_at(&[b, h, ki]).expect("v block");
                    let scores = qb.matmul_transb(kb).expect("qk").mul_scalar(s.scale());
                    state.step(&scores, vb).expect("online step");
                }
                blocks.push(state.finish().expect("finish"));
            }
            heads.push(FractalTensor::from_tensors(blocks).expect("head"));
        }
        batches.push(FractalTensor::nested(heads).expect("batch"));
    }
    FractalTensor::nested(batches).expect("output")
}

/// Simulates one strategy. Mapping to the paper's §6.4 baselines:
/// `Eager` = PyTorch full softmax, `FusedOp` = CUTLASS fused attention
/// (small tiles, heavy operand re-reads), `BlockTile` = Triton,
/// `Handcrafted` = FlashAttention-2, `FractalTensor` = the compiled
/// online-softmax schedule with tile-library staging.
pub fn simulate(s: AttnShape, strategy: Strategy) -> Option<SimReport> {
    let mut m = machine();
    let fb = 4u64;
    let bh = (s.batch * s.heads) as u64;
    let q_bytes = bh * (s.q_len() * s.dh) as u64 * fb;
    let kv_bytes = bh * (s.kv_len() * s.dh) as u64 * fb;
    let scores_bytes = bh * (s.q_len() * s.kv_len()) as u64 * fb;
    let q = m.alloc(q_bytes);
    let k = m.alloc(kv_bytes);
    let v = m.alloc(kv_bytes);
    let out = m.alloc(q_bytes);
    let flops = s.flops();
    let softmax_flops = 4 * bh * (s.q_len() * s.kv_len()) as u64;

    match strategy {
        Strategy::Eager => {
            // PyTorch: S = QK^T materialized, softmax over S, then S @ V.
            let scores = m.alloc(scores_bytes);
            let k1 = ft_sim::Kernel {
                name: "qk_t".into(),
                flops: flops / 2,
                tensor_cores: true,
                reads: vec![Region::whole(q), Region::whole(k)],
                writes: vec![Region::whole(scores)],
                l1_extra_bytes: flops / 8,
                ctas: bh * s.q_blocks as u64,
                smem_per_cta: 64 * 1024,
            };
            m.launch(&k1);
            let k2 = ft_sim::Kernel {
                name: "softmax".into(),
                flops: softmax_flops,
                tensor_cores: false,
                reads: vec![Region::whole(scores)],
                writes: vec![Region::whole(scores)],
                l1_extra_bytes: 0,
                ctas: bh * s.q_len() as u64 / 32,
                smem_per_cta: 0,
            };
            m.launch(&k2);
            let k3 = ft_sim::Kernel {
                name: "attn_v".into(),
                flops: flops / 2,
                tensor_cores: true,
                reads: vec![Region::whole(scores), Region::whole(v)],
                writes: vec![Region::whole(out)],
                l1_extra_bytes: flops / 8,
                ctas: bh * s.q_blocks as u64,
                smem_per_cta: 64 * 1024,
            };
            m.launch(&k3);
        }
        Strategy::FusedOp
        | Strategy::BlockTile
        | Strategy::Handcrafted
        | Strategy::FractalTensor => {
            // All fused variants: one kernel, no materialized scores. They
            // differ in the query-tile height, which sets how many times
            // K and V stream from L2/DRAM.
            let q_tile_rows = match strategy {
                Strategy::FusedOp => 32,      // CUTLASS: instruction-shaped tiles.
                Strategy::BlockTile => 96,    // Triton autotuned default.
                Strategy::Handcrafted => 128, // FlashAttention-2.
                _ => {
                    // FractalTensor: validate the compiled structure, then
                    // take the tile library's selection.
                    let compiled =
                        ft_passes::compile(&program(s)).expect("flash attention compiles");
                    assert_eq!(compiled.groups.len(), 2, "reduce + normalize groups");
                    ft_sim::TileConfig::select(s.q_len(), s.dh, m.config().smem_per_sm_bytes).tm
                        as u64
                }
            } as u64;
            let reread = (s.q_len() as u64).div_ceil(q_tile_rows).max(1);
            // Each (batch, head) pair's CTAs re-stream that pair's K/V
            // slice once per query tile; the slice fits L2, so only the
            // first pass reaches DRAM — the locality structure of all the
            // fused attention kernels.
            let per_bh_kv = kv_bytes / bh;
            let mut reads = vec![Region::whole(q)];
            for i in 0..bh {
                for _ in 0..reread {
                    reads.push(Region::range(k, i * per_bh_kv, per_bh_kv));
                    reads.push(Region::range(v, i * per_bh_kv, per_bh_kv));
                }
            }
            // Extra L1 traffic: FA-2 re-reads accumulators per kv block;
            // the FT schedule keeps (m, s, o) register-resident.
            let acc_bytes = match strategy {
                Strategy::Handcrafted => 2 * q_bytes,
                Strategy::FusedOp => 4 * q_bytes,
                _ => q_bytes,
            };
            let kf = ft_sim::Kernel {
                name: format!("fused_attention_{}", strategy.short()),
                flops: flops + softmax_flops,
                tensor_cores: true,
                reads,
                writes: vec![Region::whole(out)],
                l1_extra_bytes: flops / 8 + acc_bytes,
                ctas: bh * (s.q_len() as u64 / q_tile_rows).max(1),
                smem_per_cta: 96 * 1024,
            };
            m.launch(&kf);
        }
    }
    Some(SimReport::from_machine(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    #[test]
    fn online_reference_matches_full_softmax() {
        let s = AttnShape::tiny();
        let ins = inputs(s, 51);
        let full = reference_full(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
        let online = reference_online(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
        assert_allclose(&full.to_flat().unwrap(), &online.to_flat().unwrap(), 1e-4);
    }

    #[test]
    fn interpreter_matches_full_softmax() {
        let s = AttnShape::tiny();
        let ins = inputs(s, 53);
        let out = run_program(&program(s), &ins).unwrap();
        let full = reference_full(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
        assert_allclose(
            &out[&buffers::OUT].to_flat().unwrap(),
            &full.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn compiled_matches_full_softmax() {
        let s = AttnShape::tiny();
        let ins = inputs(s, 55);
        let compiled = compile(&program(s)).unwrap();
        // The reduce group runs a kv-wavefront; the normalize group is
        // fully parallel.
        assert_eq!(compiled.groups.len(), 2);
        assert_eq!(compiled.groups[0].wavefront_steps(), s.kv_blocks as i64);
        assert_eq!(compiled.groups[1].reordering.sequential_dims, 0);
        let got = execute(&compiled, &ins, 4).unwrap();
        let full = reference_full(&ins[&buffers::Q], &ins[&buffers::K], &ins[&buffers::V], s);
        assert_allclose(
            &got[&buffers::OUT].to_flat().unwrap(),
            &full.to_flat().unwrap(),
            1e-4,
        );
    }

    #[test]
    fn fused_strategies_avoid_materialized_scores() {
        let s = AttnShape {
            batch: 4,
            heads: 4,
            q_blocks: 8,
            kv_blocks: 16,
            block: 32,
            dh: 64,
        };
        let eager = simulate(s, Strategy::Eager).unwrap();
        let ft = simulate(s, Strategy::FractalTensor).unwrap();
        let fa2 = simulate(s, Strategy::Handcrafted).unwrap();
        let cutlass = simulate(s, Strategy::FusedOp).unwrap();
        // No [Lq, Lkv] score tensor in DRAM for the fused versions.
        assert!(ft.traffic.dram_bytes < eager.traffic.dram_bytes / 2);
        // CUTLASS pays far more L1/L2 traffic (the Table 7 pattern).
        assert!(cutlass.traffic.l2_bytes > 2 * ft.traffic.l2_bytes);
        // FT within ~7% of the handcrafted kernel (paper: 1.07x).
        assert!(ft.ms <= fa2.ms * 1.02, "ft {} fa2 {}", ft.ms, fa2.ms);
    }
}
