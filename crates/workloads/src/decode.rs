//! Autoregressive decode-step workloads for stateful serving.
//!
//! One-shot workloads recompute attention over the whole sequence every
//! request. A decode loop instead carries state across steps: the KV
//! cache grows by one row per token and the online-softmax merge folds
//! the new token in — the scan/fold recurrence structure the ETDG already
//! expresses, evaluated incrementally. This module holds the *single
//! decode step* as a FractalTensor program whose state enters and leaves
//! through explicit buffers, so a serving session
//! (`ft_serve::Runtime::open_session`) can pin them across requests and
//! advance them in place:
//!
//! * [`attention_decode_step_program`] — one token of single-head
//!   attention against a fixed-capacity KV cache. The cache and its
//!   visibility mask are state (`Append`/`AppendFill` bindings); the
//!   step's projected key/value rows come back as outputs for the append.
//! * the stacked-RNN decode step lives in
//!   [`ft_core::builders::rnn_decode_step_program`] (it is the paper's
//!   running example with the time scan unrolled); this module adds its
//!   state initializer.
//!
//! Every program keeps a pure extent-1 `map` as its outer axis, so decode
//! steps from *different* sessions batch into one wavefront launch — the
//! serving layer's continuous-batching tick.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{CarriedInit, Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, AxisExpr, BufferId};
use ft_tensor::Tensor;

/// Additive mask for cache rows not yet written: large enough that
/// `exp(score + MASKED)` underflows to exactly `0.0` for any realistic
/// score, small enough to stay finite (a `-inf` mask would put `inf - inf
/// = NaN` on the online-softmax rescale path).
pub const MASKED: f32 = -1.0e9;

/// Buffer ids of [`attention_decode_step_program`]'s declarations.
pub mod buffers {
    use ft_core::BufferId;
    /// The step's token `[1]` of `[1, h]`.
    pub const X: BufferId = BufferId(0);
    /// Query projection `[1]` of `[h, h]` (shared across sessions).
    pub const WQ: BufferId = BufferId(1);
    /// Key projection `[1]` of `[h, h]` (shared).
    pub const WK: BufferId = BufferId(2);
    /// Value projection `[1]` of `[h, h]` (shared).
    pub const WV: BufferId = BufferId(3);
    /// Pinned key cache `[1, C]` of `[1, h]` — session state (`Append`).
    pub const KC: BufferId = BufferId(4);
    /// Pinned value cache `[1, C]` of `[1, h]` — session state (`Append`).
    pub const VC: BufferId = BufferId(5);
    /// Pinned visibility mask `[1, C]` of `[1, 1]` — session state
    /// (`AppendFill(0.0)`): [`super::MASKED`] on unwritten rows, `0` once
    /// the row is filled.
    pub const MASK: BufferId = BufferId(6);
    /// Projected query `[1]` of `[1, h]` (intermediate).
    pub const QB: BufferId = BufferId(7);
    /// The step's projected key row `[1]` of `[1, h]` — appended to
    /// [`KC`] by the session after the step.
    pub const K_STEP: BufferId = BufferId(8);
    /// The step's projected value row `[1]` of `[1, h]` — appended to
    /// [`VC`].
    pub const V_STEP: BufferId = BufferId(9);
    /// Online-softmax running max `[1, C]` of `[1, 1]` (intermediate).
    pub const M: BufferId = BufferId(10);
    /// Running denominator `[1, C]` of `[1, 1]` (intermediate).
    pub const S: BufferId = BufferId(11);
    /// Unnormalized output `[1, C]` of `[1, h]` (intermediate).
    pub const O: BufferId = BufferId(12);
    /// The attended token `[1]` of `[1, h]`.
    pub const OUT: BufferId = BufferId(13);
}

/// One single-head attention decode step against a capacity-`cap` KV
/// cache, head dimension `h`.
///
/// Three nests: **project** (`q/k/v = x @ wq/wk/wv`), **scan** — the
/// Listing 3 online-softmax reduce over the cache, with the additive mask
/// washing out rows the session hasn't appended yet (`exp(MASKED)`
/// underflows to zero) — and **merge**, which folds the step's *own*
/// key/value in last, so the token always attends over `cache ∪ {self}`.
/// The merge also rescues the step-0 edge case: with every cache row
/// masked the scan's running max sits near [`MASKED`], the merge's
/// rescale `exp(m - m2)` underflows to zero, and the output is exactly
/// the self-attention term.
pub fn attention_decode_step_program(h: usize, cap: usize) -> Program {
    let scale = 1.0 / (h as f32).sqrt();
    let mut p = Program::new("attention_decode_step");
    let x = p.input("x", &[1], &[1, h]);
    let wq = p.input("wq", &[1], &[h, h]);
    let wk = p.input("wk", &[1], &[h, h]);
    let wv = p.input("wv", &[1], &[h, h]);
    let kc = p.input("kc", &[1, cap], &[1, h]);
    let vc = p.input("vc", &[1, cap], &[1, h]);
    let mask = p.input("mask", &[1, cap], &[1, 1]);
    let qb = p.intermediate("qb", &[1], &[1, h]);
    let k_step = p.output("k_step", &[1], &[1, h]);
    let v_step = p.output("v_step", &[1], &[1, h]);
    let mb = p.intermediate("m", &[1, cap], &[1, 1]);
    let sb = p.intermediate("s", &[1, cap], &[1, 1]);
    let ob = p.intermediate("o", &[1, cap], &[1, h]);
    let out = p.output("out", &[1], &[1, h]);

    // Projections: q for this step's attention, k/v as outputs the
    // session appends into its pinned cache.
    let mut bld = UdfBuilder::new("decode_project", 4);
    let (xi, wqi, wki, wvi) = (bld.input(0), bld.input(1), bld.input(2), bld.input(3));
    let q = bld.matmul(xi, wqi);
    let k = bld.matmul(xi, wki);
    let v = bld.matmul(xi, wvi);
    let udf = bld.build(&[q, k, v]);
    let shared = |buf| Read::plain(buf, AccessSpec::new(vec![AxisExpr::constant(0)]));
    p.add_nest(Nest {
        name: "decode_project".into(),
        ops: vec![OpKind::Map],
        extents: vec![1],
        reads: vec![
            Read::plain(x, AccessSpec::new(vec![AxisExpr::var(0)])),
            shared(wq),
            shared(wk),
            shared(wv),
        ],
        writes: vec![
            Write {
                buffer: qb,
                access: AccessSpec::identity(1),
            },
            Write {
                buffer: k_step,
                access: AccessSpec::identity(1),
            },
            Write {
                buffer: v_step,
                access: AccessSpec::identity(1),
            },
        ],
        udf,
    })
    .expect("decode project nest is well-formed");

    // Online softmax over the cache (inputs: q, k, v, mask, m, s, o
    // previous). Scores are [1, 1], so the block-wise row_max/row_sum of
    // the full FlashAttention step collapse to elementwise ops.
    let mut bld = UdfBuilder::new("decode_scan", 7);
    let (qi, ki, vi, mski, mp, sp, op) = (
        bld.input(0),
        bld.input(1),
        bld.input(2),
        bld.input(3),
        bld.input(4),
        bld.input(5),
        bld.input(6),
    );
    let t1 = bld.matmul_t(qi, ki);
    let t1s = bld.scale(t1, scale);
    let sm = bld.add(t1s, mski);
    let mt = bld.max(sm, mp);
    let d1 = bld.sub(sm, mt);
    let pe = bld.exp(d1);
    let d2 = bld.sub(mp, mt);
    let alpha = bld.exp(d2);
    let s_scaled = bld.mul(sp, alpha);
    let st = bld.add(s_scaled, pe);
    let o_scaled = bld.mul_col_bc(op, alpha);
    let pv = bld.mul_col_bc(vi, pe);
    let ot = bld.add(o_scaled, pv);
    let udf = bld.build(&[mt, st, ot]);
    let carried = |buf, init| {
        Read::carried(
            buf,
            AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::shifted(1, -1)]),
            init,
        )
    };
    let row = |buf| {
        Read::plain(
            buf,
            AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::var(1)]),
        )
    };
    p.add_nest(Nest {
        name: "decode_scan".into(),
        ops: vec![OpKind::Map, OpKind::Reduce],
        extents: vec![1, cap],
        reads: vec![
            Read::plain(qb, AccessSpec::new(vec![AxisExpr::var(0)])),
            row(kc),
            row(vc),
            row(mask),
            carried(mb, CarriedInit::Fill(f32::NEG_INFINITY)),
            carried(sb, CarriedInit::Zero),
            carried(ob, CarriedInit::Zero),
        ],
        writes: vec![
            Write {
                buffer: mb,
                access: AccessSpec::identity(2),
            },
            Write {
                buffer: sb,
                access: AccessSpec::identity(2),
            },
            Write {
                buffer: ob,
                access: AccessSpec::identity(2),
            },
        ],
        udf,
    })
    .expect("decode scan nest is well-formed");

    // Merge the step's own key/value as the final online-softmax fold,
    // then normalize: out = (o·α + v_step·p) / (s·α + p).
    let mut bld = UdfBuilder::new("decode_merge", 6);
    let (qi, ksi, vsi, mi, si, oi) = (
        bld.input(0),
        bld.input(1),
        bld.input(2),
        bld.input(3),
        bld.input(4),
        bld.input(5),
    );
    let t1 = bld.matmul_t(qi, ksi);
    let t1s = bld.scale(t1, scale);
    let m2 = bld.max(t1s, mi);
    let d1 = bld.sub(t1s, m2);
    let pe = bld.exp(d1);
    let d2 = bld.sub(mi, m2);
    let alpha = bld.exp(d2);
    let s_scaled = bld.mul(si, alpha);
    let s2 = bld.add(s_scaled, pe);
    let o_scaled = bld.mul_col_bc(oi, alpha);
    let pv = bld.mul_col_bc(vsi, pe);
    let o2 = bld.add(o_scaled, pv);
    let norm = bld.div_col_bc(o2, s2);
    let udf = bld.build(&[norm]);
    let first = |buf| Read::plain(buf, AccessSpec::new(vec![AxisExpr::var(0)]));
    let last = |buf| {
        Read::plain(
            buf,
            AccessSpec::new(vec![AxisExpr::var(0), AxisExpr::constant(cap as i64 - 1)]),
        )
    };
    p.add_nest(Nest {
        name: "decode_merge".into(),
        ops: vec![OpKind::Map],
        extents: vec![1],
        reads: vec![
            first(qb),
            first(k_step),
            first(v_step),
            last(mb),
            last(sb),
            last(ob),
        ],
        writes: vec![Write {
            buffer: out,
            access: AccessSpec::identity(1),
        }],
        udf,
    })
    .expect("decode merge nest is well-formed");
    p
}

/// Initial pinned state for an attention decode session of capacity
/// `cap`: zeroed key/value caches and a fully-[`MASKED`] visibility mask,
/// keyed by the state buffer ids ([`buffers::KC`], [`buffers::VC`],
/// [`buffers::MASK`]).
pub fn attention_state_init(h: usize, cap: usize) -> HashMap<BufferId, FractalTensor> {
    let rows = |leaf: Tensor| {
        FractalTensor::nested(vec![FractalTensor::from_tensors(
            (0..cap).map(|_| leaf.clone()).collect(),
        )
        .expect("rows")])
        .expect("cache")
    };
    let mut m = HashMap::new();
    m.insert(buffers::KC, rows(Tensor::zeros(&[1, h])));
    m.insert(buffers::VC, rows(Tensor::zeros(&[1, h])));
    m.insert(buffers::MASK, rows(Tensor::full(&[1, 1], MASKED)));
    m
}

/// Deterministic projection weights `(wq, wk, wv)`, shaped as the
/// program's shared `[1]/[h, h]` inputs. Sessions sharing one serving
/// batch must pass equal weights (the fused path requires shared inputs
/// to match across the batch).
pub fn attention_weights(h: usize, seed: u64) -> (FractalTensor, FractalTensor, FractalTensor) {
    let w = |s| {
        FractalTensor::from_tensors(vec![Tensor::randn(&[h, h], s).mul_scalar(0.3)])
            .expect("weight")
    };
    (w(seed), w(seed + 1), w(seed + 2))
}

/// Initial pinned state for an RNN decode session
/// ([`ft_core::builders::rnn_decode_step_program`]): a zeroed `[1, d]`
/// hidden stack keyed by its state buffer (`BufferId(2)`).
pub fn rnn_state_init(d: usize, h: usize) -> HashMap<BufferId, FractalTensor> {
    let hs = FractalTensor::nested(vec![FractalTensor::from_tensors(
        (0..d).map(|_| Tensor::zeros(&[1, h])).collect(),
    )
    .expect("layers")])
    .expect("stack");
    HashMap::from([(BufferId(2), hs)])
}

/// Eager reference: full-softmax attention of token `t` over tokens
/// `0..=t`. `tokens` are the raw `[1, h]` token leaves in order; the
/// result is the `[1, h]` attended output of the last one.
pub fn reference_decode_step(tokens: &[Tensor], wq: &Tensor, wk: &Tensor, wv: &Tensor) -> Tensor {
    let h = wq.dims()[1];
    let scale = 1.0 / (h as f32).sqrt();
    let t = tokens.len() - 1;
    let q = tokens[t].matmul(wq).expect("q");
    let keys: Vec<Tensor> = tokens.iter().map(|x| x.matmul(wk).expect("k")).collect();
    let vals: Vec<Tensor> = tokens.iter().map(|x| x.matmul(wv).expect("v")).collect();
    let km = Tensor::concat(&keys, 0).expect("keys");
    let vm = Tensor::concat(&vals, 0).expect("vals");
    let scores = q.matmul_transb(&km).expect("qk").mul_scalar(scale);
    scores
        .softmax_rows()
        .expect("softmax")
        .matmul(&vm)
        .expect("av")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute;
    use ft_core::builders::{rnn_decode_step_program, stacked_rnn_program};
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    fn token(h: usize, seed: u64) -> Tensor {
        Tensor::randn(&[1, h], seed)
    }

    /// Drives the decode program directly (no serving layer), advancing
    /// the cache state by hand exactly as a session would: append the
    /// step's k/v outputs at row `t`, flip the mask row to visible.
    fn decode_loop(h: usize, cap: usize, steps: usize, threads: usize) -> Vec<Tensor> {
        let p = attention_decode_step_program(h, cap);
        let compiled = compile(&p).expect("decode step compiles");
        let (wq, wk, wv) = attention_weights(h, 9);
        let mut state = attention_state_init(h, cap);
        let mut outs = Vec::new();
        for t in 0..steps {
            let mut inputs = state.clone();
            inputs.insert(
                buffers::X,
                FractalTensor::from_tensors(vec![token(h, 100 + t as u64)]).unwrap(),
            );
            inputs.insert(buffers::WQ, wq.clone());
            inputs.insert(buffers::WK, wk.clone());
            inputs.insert(buffers::WV, wv.clone());
            let got = execute(&compiled, &inputs, threads).expect("step");
            outs.push(got[&buffers::OUT].leaf_at(&[0]).unwrap().to_contiguous());
            let set_row = |ft: &mut FractalTensor, leaf: Tensor| {
                let FractalTensor::Nested(groups) = ft else {
                    panic!("cache shape")
                };
                let FractalTensor::Leaves(rows) = &mut groups[0] else {
                    panic!("cache shape")
                };
                rows[t] = leaf;
            };
            set_row(
                state.get_mut(&buffers::KC).unwrap(),
                got[&buffers::K_STEP].leaf_at(&[0]).unwrap().clone(),
            );
            set_row(
                state.get_mut(&buffers::VC).unwrap(),
                got[&buffers::V_STEP].leaf_at(&[0]).unwrap().clone(),
            );
            set_row(
                state.get_mut(&buffers::MASK).unwrap(),
                Tensor::zeros(&[1, 1]),
            );
        }
        outs
    }

    #[test]
    fn decode_loop_matches_eager_full_softmax() {
        let (h, cap, steps) = (8usize, 6usize, 5usize);
        let (wq, wk, wv) = attention_weights(h, 9);
        let (wq, wk, wv) = (
            wq.leaf_at(&[0]).unwrap().clone(),
            wk.leaf_at(&[0]).unwrap().clone(),
            wv.leaf_at(&[0]).unwrap().clone(),
        );
        let outs = decode_loop(h, cap, steps, 2);
        let tokens: Vec<Tensor> = (0..steps).map(|t| token(h, 100 + t as u64)).collect();
        for t in 0..steps {
            let want = reference_decode_step(&tokens[..=t], &wq, &wk, &wv);
            assert_allclose(&outs[t], &want, 1e-4);
        }
    }

    #[test]
    fn decode_loop_is_thread_count_invariant() {
        let (h, cap, steps) = (8usize, 6usize, 4usize);
        let solo = decode_loop(h, cap, steps, 1);
        for threads in [2usize, 8] {
            let multi = decode_loop(h, cap, steps, threads);
            assert_eq!(solo, multi, "decode must be bitwise at {threads} threads");
        }
    }

    #[test]
    fn interpreter_matches_compiled_step() {
        let (h, cap) = (8usize, 4usize);
        let p = attention_decode_step_program(h, cap);
        let (wq, wk, wv) = attention_weights(h, 21);
        let mut inputs = attention_state_init(h, cap);
        inputs.insert(
            buffers::X,
            FractalTensor::from_tensors(vec![token(h, 300)]).unwrap(),
        );
        inputs.insert(buffers::WQ, wq);
        inputs.insert(buffers::WK, wk);
        inputs.insert(buffers::WV, wv);
        let interp = run_program(&p, &inputs).expect("interpreter");
        let compiled = compile(&p).expect("compiles");
        let exec = execute(&compiled, &inputs, 2).expect("executor");
        assert_allclose(
            &interp[&buffers::OUT].to_flat().unwrap(),
            &exec[&buffers::OUT].to_flat().unwrap(),
            1e-5,
        );
    }

    /// The RNN decode step fed back on itself for `l` steps reproduces
    /// the one-shot stacked RNN bitwise (same UDF cell, same order).
    #[test]
    fn rnn_decode_step_matches_stacked_rnn() {
        let (d, l, h) = (3usize, 4, 8);
        let step = rnn_decode_step_program(d, h);
        let compiled = compile(&step).expect("step compiles");
        let ws = FractalTensor::from_tensors(
            (0..d)
                .map(|j| Tensor::randn(&[h, h], 60 + j as u64).mul_scalar(0.2))
                .collect(),
        )
        .unwrap();
        let tokens: Vec<Tensor> = (0..l).map(|t| token(h, 500 + t as u64)).collect();
        let mut hs = rnn_state_init(d, h)[&BufferId(2)].clone();
        let mut per_step = Vec::new();
        for tok in &tokens {
            let mut inputs = HashMap::new();
            inputs.insert(
                BufferId(0),
                FractalTensor::from_tensors(vec![tok.clone()]).unwrap(),
            );
            inputs.insert(BufferId(1), ws.clone());
            inputs.insert(BufferId(2), hs.clone());
            let got = execute(&compiled, &inputs, 2).expect("step");
            hs = got[&BufferId(3)].clone();
            per_step.push(hs.clone());
        }
        let one_shot = stacked_rnn_program(1, d, l, h);
        let oneshot_compiled = compile(&one_shot).expect("one-shot compiles");
        let xss = FractalTensor::nested(vec![FractalTensor::from_tensors(tokens.clone()).unwrap()])
            .unwrap();
        let mut ref_inputs = HashMap::new();
        ref_inputs.insert(BufferId(0), xss);
        ref_inputs.insert(BufferId(1), ws);
        let ysss = &execute(&oneshot_compiled, &ref_inputs, 2).expect("one-shot")[&BufferId(2)];
        for (t, hs_t) in per_step.iter().enumerate() {
            for j in 0..d {
                assert_eq!(
                    hs_t.leaf_at(&[0, j]).unwrap(),
                    ysss.leaf_at(&[0, j, t]).unwrap(),
                    "step {t} layer {j} must match the one-shot scan bitwise"
                );
            }
        }
    }
}
