//! Back-to-back GEMMs (paper Table 6: K = 64, P = 64).
//!
//! The workload is a batch of chained products `D = (A @ B0) @ B1` with
//! `A: [M, K]`, `B0: [K, P]`, `B1: [P, N]`. The paper's point: a DAG of two
//! GEMM operators round-trips the `[M, P]` intermediate through DRAM, while
//! FractalTensor's vertical coarsening fuses the chain into one launch with
//! the intermediate staged in shared memory (as CUTLASS's handwritten
//! b2b-GEMM does). The two map nests of the program merge under the
//! Table 3 rules (`map ∘ map = map`), giving a fully parallel single group.

use std::collections::HashMap;

use ft_core::adt::FractalTensor;
use ft_core::expr::UdfBuilder;
use ft_core::program::{Nest, OpKind, Program, Read, Write};
use ft_core::{AccessSpec, BufferId};
use ft_sim::{Region, TileConfig};
use ft_tensor::Tensor;

use crate::strategies::{machine, SimReport, Strategy};

/// Shape of a back-to-back GEMM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct B2bShape {
    /// Number of independent chains.
    pub batch: usize,
    /// Rows of `A`.
    pub m: usize,
    /// Contraction depth of the first GEMM (Table 6's K = 64).
    pub k: usize,
    /// Intermediate width (Table 6's P = 64).
    pub p: usize,
    /// Output width.
    pub n: usize,
}

impl B2bShape {
    /// Table 6 configuration.
    pub fn paper() -> Self {
        B2bShape {
            batch: 64,
            m: 512,
            k: 64,
            p: 64,
            n: 64,
        }
    }

    /// Tiny correctness shape.
    pub fn tiny() -> Self {
        B2bShape {
            batch: 3,
            m: 5,
            k: 4,
            p: 6,
            n: 2,
        }
    }

    /// FLOPs of one chain.
    pub fn chain_flops(&self) -> u64 {
        let (m, k, p, n) = (self.m as u64, self.k as u64, self.p as u64, self.n as u64);
        2 * m * k * p + 2 * m * p * n
    }
}

/// Buffer ids of [`program`]'s declarations.
pub mod buffers {
    use ft_core::BufferId;
    /// Left operands `[batch]` of `[M, K]`.
    pub const A: BufferId = BufferId(0);
    /// First right operands `[batch]` of `[K, P]`.
    pub const B0: BufferId = BufferId(1);
    /// Second right operands `[batch]` of `[P, N]`.
    pub const B1: BufferId = BufferId(2);
    /// Intermediates `[batch]` of `[M, P]`.
    pub const MID: BufferId = BufferId(3);
    /// Outputs `[batch]` of `[M, N]`.
    pub const OUT: BufferId = BufferId(4);
}

/// Builds the two-nest b2b GEMM program.
pub fn program(s: B2bShape) -> Program {
    let mut prog = Program::new("b2b_gemm");
    let a = prog.input("a", &[s.batch], &[s.m, s.k]);
    let b0 = prog.input("b0", &[s.batch], &[s.k, s.p]);
    let b1 = prog.input("b1", &[s.batch], &[s.p, s.n]);
    let mid = prog.intermediate("mid", &[s.batch], &[s.m, s.p]);
    let out = prog.output("out", &[s.batch], &[s.m, s.n]);

    let mk_mm = |name: &str| {
        let mut b = UdfBuilder::new(name, 2);
        let (x, y) = (b.input(0), b.input(1));
        let r = b.matmul(x, y);
        b.build(&[r])
    };
    prog.add_nest(Nest {
        name: "gemm0".into(),
        ops: vec![OpKind::Map],
        extents: vec![s.batch],
        reads: vec![
            Read::plain(a, AccessSpec::identity(1)),
            Read::plain(b0, AccessSpec::identity(1)),
        ],
        writes: vec![Write {
            buffer: mid,
            access: AccessSpec::identity(1),
        }],
        udf: mk_mm("gemm0"),
    })
    .expect("gemm0 nest");
    prog.add_nest(Nest {
        name: "gemm1".into(),
        ops: vec![OpKind::Map],
        extents: vec![s.batch],
        reads: vec![
            Read::plain(mid, AccessSpec::identity(1)),
            Read::plain(b1, AccessSpec::identity(1)),
        ],
        writes: vec![Write {
            buffer: out,
            access: AccessSpec::identity(1),
        }],
        udf: mk_mm("gemm1"),
    })
    .expect("gemm1 nest");
    prog
}

/// Deterministic inputs.
pub fn inputs(s: B2bShape, seed: u64) -> HashMap<BufferId, FractalTensor> {
    let mut m = HashMap::new();
    m.insert(
        buffers::A,
        FractalTensor::from_flat(&Tensor::randn(&[s.batch, s.m, s.k], seed), 1).expect("a"),
    );
    m.insert(
        buffers::B0,
        FractalTensor::from_flat(&Tensor::randn(&[s.batch, s.k, s.p], seed + 1), 1).expect("b0"),
    );
    m.insert(
        buffers::B1,
        FractalTensor::from_flat(&Tensor::randn(&[s.batch, s.p, s.n], seed + 2), 1).expect("b1"),
    );
    m
}

/// Eager reference: `map` over the batch of chained products.
pub fn reference(a: &FractalTensor, b0: &FractalTensor, b1: &FractalTensor) -> FractalTensor {
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let mid = a
            .leaf(i)
            .expect("a leaf")
            .matmul(b0.leaf(i).expect("b0 leaf"))
            .expect("gemm0");
        out.push(mid.matmul(b1.leaf(i).expect("b1 leaf")).expect("gemm1"));
    }
    FractalTensor::from_tensors(out).expect("b2b output")
}

/// Simulates one strategy. All baselines exist for GEMMs: `Eager` ≈ two
/// cuBLAS calls, `FusedOp` ≈ TVM (cannot fuse two contractions either),
/// `BlockTile` ≈ a Triton fused kernel, `Handcrafted` ≈ CUTLASS b2b.
pub fn simulate(s: B2bShape, strategy: Strategy) -> Option<SimReport> {
    let mut mach = machine();
    let fb = 4u64;
    let (bt, m, k, p, n) = (
        s.batch as u64,
        s.m as u64,
        s.k as u64,
        s.p as u64,
        s.n as u64,
    );
    let a = mach.alloc(bt * m * k * fb);
    let b0 = mach.alloc(bt * k * p * fb);
    let b1 = mach.alloc(bt * p * n * fb);
    let mid = mach.alloc(bt * m * p * fb);
    let out = mach.alloc(bt * m * n * fb);
    let tile = TileConfig::select(s.m, s.p, mach.config().smem_per_sm_bytes);

    match strategy {
        Strategy::Eager | Strategy::FusedOp => {
            // Two batched GEMM launches; the intermediate crosses DRAM.
            let k1 = ft_sim::Kernel {
                name: "batched_gemm0".into(),
                flops: bt * 2 * m * k * p,
                tensor_cores: true,
                reads: vec![Region::whole(a), Region::whole(b0)],
                writes: vec![Region::whole(mid)],
                l1_extra_bytes: bt * m * k * p,
                ctas: bt * (s.m.div_ceil(tile.tm) as u64).max(1),
                smem_per_cta: tile.smem_bytes(),
            };
            mach.launch(&k1);
            let k2 = ft_sim::Kernel {
                name: "batched_gemm1".into(),
                flops: bt * 2 * m * p * n,
                tensor_cores: true,
                reads: vec![Region::whole(mid), Region::whole(b1)],
                writes: vec![Region::whole(out)],
                l1_extra_bytes: bt * m * p * n,
                ctas: bt * (s.m.div_ceil(tile.tm) as u64).max(1),
                smem_per_cta: tile.smem_bytes(),
            };
            mach.launch(&k2);
        }
        Strategy::BlockTile | Strategy::Handcrafted | Strategy::FractalTensor => {
            // Fused: the [M, P] intermediate never leaves shared memory.
            if strategy == Strategy::FractalTensor {
                let compiled = ft_passes::compile(&program(s)).expect("b2b compiles");
                assert_eq!(
                    compiled.groups.len(),
                    1,
                    "vertical coarsening must fuse the chain"
                );
            }
            // CUTLASS-style fusion pays extra tile re-reads of B1 per M
            // stripe; the Triton/FT versions keep both B operands staged.
            let reload = if strategy == Strategy::Handcrafted {
                (m.div_ceil(tile.tm as u64)).max(1)
            } else {
                1
            };
            let mut reads = vec![Region::whole(a), Region::whole(b0)];
            for _ in 0..reload {
                reads.push(Region::whole(b1));
            }
            let kf = ft_sim::Kernel {
                name: "b2b_fused".into(),
                flops: bt * s.chain_flops(),
                tensor_cores: true,
                reads,
                writes: vec![Region::whole(out)],
                l1_extra_bytes: bt * (m * k * p + m * p * n) + bt * m * p * fb,
                ctas: bt * (s.m.div_ceil(tile.tm) as u64).max(1),
                smem_per_cta: tile.smem_bytes() + (tile.tm as u64 * p * fb),
            };
            mach.launch(&kf);
        }
    }
    Some(SimReport::from_machine(&mach))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ft_backend::execute;
    use ft_core::interp::run_program;
    use ft_passes::compile;
    use ft_tensor::assert_allclose;

    #[test]
    fn interpreter_matches_eager_reference() {
        let s = B2bShape::tiny();
        let ins = inputs(s, 41);
        let out = run_program(&program(s), &ins).unwrap();
        let expected = reference(&ins[&buffers::A], &ins[&buffers::B0], &ins[&buffers::B1]);
        assert_allclose(
            &out[&buffers::OUT].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-3,
        );
    }

    #[test]
    fn chain_fuses_into_one_parallel_group() {
        let compiled = compile(&program(B2bShape::tiny())).unwrap();
        assert_eq!(compiled.groups.len(), 1);
        assert_eq!(compiled.groups[0].members.len(), 2);
        // Pure map: no sequential dimension at all.
        assert_eq!(compiled.groups[0].reordering.sequential_dims, 0);
    }

    #[test]
    fn compiled_matches_reference() {
        let s = B2bShape::tiny();
        let ins = inputs(s, 43);
        let compiled = compile(&program(s)).unwrap();
        let got = execute(&compiled, &ins, 4).unwrap();
        let expected = reference(&ins[&buffers::A], &ins[&buffers::B0], &ins[&buffers::B1]);
        assert_allclose(
            &got[&buffers::OUT].to_flat().unwrap(),
            &expected.to_flat().unwrap(),
            1e-3,
        );
    }

    #[test]
    fn fusion_removes_intermediate_dram_traffic() {
        let s = B2bShape::paper();
        let eager = simulate(s, Strategy::Eager).unwrap();
        let ft = simulate(s, Strategy::FractalTensor).unwrap();
        let cutlass = simulate(s, Strategy::Handcrafted).unwrap();
        // The fused versions skip the DRAM round trip of `mid`.
        assert!(ft.traffic.dram_bytes < eager.traffic.dram_bytes);
        assert!(ft.kernels < eager.kernels);
        // FT edges out the CUTLASS reload pattern slightly (the paper's
        // 1.21x over cuBLAS, 1.0-1.2x band over CUTLASS).
        assert!(ft.ms <= cutlass.ms * 1.01);
        assert!(ft.ms < eager.ms);
    }
}
