//! Offline vendored stand-in for the `rand` crate.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors the tiny API subset it actually uses: a seedable,
//! deterministic RNG (`rngs::StdRng`), the [`SeedableRng`] constructor
//! trait, and the [`RngExt`] sampling extension (`rng.random::<f32>()`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test-data generation, *not* cryptographic. Streams are stable
//! across runs and platforms, which is exactly what `Tensor::randn(seed)`
//! relies on.

#![forbid(unsafe_code)]

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of uniformly-distributed primitive values.
pub trait RandomValue: Sized {
    /// Draws one value from the generator.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

/// Extension trait providing `rng.random::<T>()`.
pub trait RngExt {
    /// Draws a uniformly-distributed value of type `T`.
    fn random<T: RandomValue>(&mut self) -> T;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RandomValue, RngExt, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// The next raw 32-bit output.
        pub fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn random<T: RandomValue>(&mut self) -> T {
            T::sample(self)
        }
    }
}

impl RandomValue for f32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl RandomValue for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for u32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u32()
    }
}

impl RandomValue for u64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl RandomValue for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
