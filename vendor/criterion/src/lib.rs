//! Offline vendored stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a simple median-of-samples timer instead of criterion's
//! statistical machinery. Good enough to (a) keep `cargo bench` runnable
//! offline and (b) print stable-ish per-bench timings; not a substitute
//! for real criterion confidence intervals.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-exported for convenience (real criterion exposes its own).
pub use std::hint::black_box;

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine` over warmup + `samples` measured batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch sizing: aim for batches of >= ~1ms.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let mut means = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            means.push(start.elapsed() / per_batch as u32);
        }
        means.sort();
        self.last_mean = means[means.len() / 2];
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "{}/{:<40} time: [{}]",
            self.name,
            id,
            format_duration(b.last_mean)
        );
        let _ = &self.criterion;
    }

    /// Benchmarks a routine under a plain name.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Benchmarks a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond parity with criterion).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            20
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    /// Benchmarks a standalone routine.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").run_one(id, f);
        self
    }
}

/// Groups bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(5u32).pow(2)));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
