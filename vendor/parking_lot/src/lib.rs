//! Offline vendored stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly and a poisoned lock (a panic while
//! held) is transparently recovered, matching `parking_lot` semantics where
//! locks are never poisoned.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};
use std::time::Duration;

pub use std::sync::WaitTimeoutResult;

/// A poison-free mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified (std-style: consumes and returns the guard).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until notified or `dur` elapses (std-style: consumes and
    /// returns the guard plus whether the wait timed out).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.inner
            .wait_timeout(guard, dur)
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
