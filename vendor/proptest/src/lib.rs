//! Offline vendored stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `name in strategy` bindings,
//! * integer/`usize` range strategies (`1i64..5`), `proptest::bool::ANY`,
//!   and `proptest::collection::vec(elem, len_range)`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`.
//!
//! Cases are generated from a deterministic xorshift RNG, so failures
//! reproduce across runs. **No shrinking** is performed — a failing case
//! panics with the generated inputs printed, which is enough for the
//! repo's CI-style usage (the real crate's shrinker is a debugging
//! nicety, not a correctness requirement).

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::ops::Range;

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Per-case result used by the macro plumbing.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xorshift64* generator used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (zero is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. The stub generates directly (no value trees / no
/// shrinking).
pub trait Strategy {
    /// The generated type.
    type Value: Debug;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A strategy returning a fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    //! Boolean strategies.

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `true`/`false`.
    pub const ANY: Any = Any;

    impl super::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut super::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.len, rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Runs one `proptest!`-defined property: generation loop, rejection
/// budget, and failure reporting. Called by the macro, not directly.
pub fn run_property(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<TestCaseResult, String>,
) {
    // Seed from the test name so distinct properties explore distinct
    // streams but each property is reproducible run-to-run.
    let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    let mut rng = TestRng::new(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < config.cases {
        match case(&mut rng) {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected}) before reaching {} cases",
                        config.cases
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("proptest '{name}' failed after {accepted} passing case(s): {msg}");
            }
            Err(inputs) => {
                panic!(
                    "proptest '{name}' failed after {accepted} passing case(s); inputs: {inputs}"
                );
            }
        }
    }
}

/// Defines property tests. See crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    // With a config header.
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            @impl ($cfg)
            $( $(#[$meta])* fn $name($($arg in $strat),*) $body )*
        }
    };
    // Without a config header.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            @impl ($crate::ProptestConfig::default())
            $( $(#[$meta])* fn $name($($arg in $strat),*) $body )*
        }
    };
    (
        @impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    // Catch plain assert!/panic! too so generated inputs
                    // are reported alongside the panic.
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)* ""),
                        $(&$arg),*
                    );
                    let outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| -> $crate::TestCaseResult {
                            $body
                            Ok(())
                        }),
                    );
                    match outcome {
                        Ok(r) => Ok(r),
                        Err(_) => Err(inputs),
                    }
                });
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{:?}` != `{:?}` ({} == {})",
                        l,
                        r,
                        stringify!($left),
                        stringify!($right)
                    )));
                }
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{:?}` == `{:?}` ({} != {})",
                        l,
                        r,
                        stringify!($left),
                        stringify!($right)
                    )));
                }
            }
        }
    };
}

/// Rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3i64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_respects_lengths(
            v in crate::collection::vec(1i64..4, 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..4).contains(&e)));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u8..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn bools_vary(b in crate::bool::ANY) {
            // Either value is fine; just exercise the strategy.
            let _ = b;
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0i64..3) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
