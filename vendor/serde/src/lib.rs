//! Offline vendored stand-in for the `serde` crate.
//!
//! No crate in this workspace currently derives `Serialize`/`Deserialize`;
//! serialization goes through the vendored `serde_json::Value` tree
//! directly. This stub exists so manifests declaring a `serde` dependency
//! (with the inert `derive` feature) resolve offline. The traits are
//! deliberately minimal markers — implement conversions to
//! `serde_json::Value` instead of implementing these.

#![forbid(unsafe_code)]

/// Marker for serializable types (stub — see crate docs).
pub trait Serialize {}

/// Marker for deserializable types (stub — see crate docs).
pub trait Deserialize<'de>: Sized {}

/// Marker for owned-deserializable types (stub — see crate docs).
pub trait DeserializeOwned: Sized {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
