//! Offline vendored stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::thread::scope` API surface used by the
//! wavefront executor, implemented on top of `std::thread::scope`
//! (stabilized in Rust 1.63, so the crossbeam dependency is pure
//! compatibility shim here).

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads.

    use std::marker::PhantomData;

    /// A scope handle passed to [`scope`]'s closure; `spawn` borrows from
    /// the enclosing environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself
        /// (crossbeam convention) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    f(&Scope {
                        inner,
                        _marker: PhantomData,
                    })
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam (which collects panics from unjoined threads into
    /// the `Err` variant), the std backing propagates panics on join — the
    /// executor joins every handle explicitly, so the observable behavior
    /// matches.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            f(&Scope {
                inner: s,
                _marker: PhantomData,
            })
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_environment() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }

        #[test]
        fn nested_spawn_via_scope_argument() {
            let r = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(r, 7);
        }
    }
}
