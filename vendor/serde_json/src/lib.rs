//! Offline vendored stand-in for the `serde_json` crate.
//!
//! Implements the `Value`-centric subset the workspace uses: the
//! [`Value`] tree, a strict JSON parser ([`from_str`]), compact and
//! pretty serializers ([`to_string`], [`to_string_pretty`]), indexing
//! (`v["key"]`, `v[0]`), literal comparisons (`v["k"] == "x"`), and a
//! [`json!`] macro covering object/array/expression forms.
//!
//! Unsupported relative to the real crate: `Serialize`/`Deserialize`
//! generic entry points (build `Value`s via `From`/`json!` instead) and
//! nested `json!` object literals inside array positions.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

mod parse;

pub use parse::{from_str, Error, FromJson};

/// Object representation: sorted keys for deterministic output.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: integer-preserving like the real crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i64),
            Number::Float(_) => None,
        }
    }

    /// The value as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(i) => u64::try_from(i).ok(),
            Number::UInt(u) => Some(u),
            Number::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => Some(f as u64),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) => {
                if x == x.trunc() && x.abs() < 1e16 {
                    // Match serde_json: floats serialize with a decimal
                    // point so they round-trip as floats.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (sorted keys).
    Object(Map),
}

impl Value {
    /// Member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key-value map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn write_compact(&self, f: &mut impl fmt::Write) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(a) => {
                f.write_char('[')?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    v.write_compact(f)?;
                }
                f.write_char(']')
            }
            Value::Object(m) => {
                f.write_char('{')?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write_escaped(f, k)?;
                    f.write_char(':')?;
                    v.write_compact(f)?;
                }
                f.write_char('}')
            }
        }
    }

    fn write_pretty(&self, f: &mut impl fmt::Write, indent: usize) -> fmt::Result {
        const PAD: &str = "  ";
        match self {
            Value::Array(a) if !a.is_empty() => {
                f.write_str("[\n")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",\n")?;
                    }
                    for _ in 0..=indent {
                        f.write_str(PAD)?;
                    }
                    v.write_pretty(f, indent + 1)?;
                }
                f.write_char('\n')?;
                for _ in 0..indent {
                    f.write_str(PAD)?;
                }
                f.write_char(']')
            }
            Value::Object(m) if !m.is_empty() => {
                f.write_str("{\n")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",\n")?;
                    }
                    for _ in 0..=indent {
                        f.write_str(PAD)?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(": ")?;
                    v.write_pretty(f, indent + 1)?;
                }
                f.write_char('\n')?;
                for _ in 0..indent {
                    f.write_str(PAD)?;
                }
                f.write_char('}')
            }
            other => other.write_compact(f),
        }
    }
}

fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if f.alternate() {
            self.write_pretty(f, 0)
        } else {
            self.write_compact(f)
        }
    }
}

/// Serializes a value compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    Ok(format!("{value:#}"))
}

// ---------------------------------------------------------------------
// Conversions.
// ---------------------------------------------------------------------

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(Number::Float(x))
    }
}

impl From<f32> for Value {
    fn from(x: f32) -> Self {
        Value::Number(Number::Float(x as f64))
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Self {
                Value::Number(Number::Int(x as i64))
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Self {
                match i64::try_from(x) {
                    Ok(i) => Value::Number(Number::Int(i)),
                    Err(_) => Value::Number(Number::UInt(x as u64)),
                }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map(Into::into).unwrap_or(Value::Null)
    }
}

// ---------------------------------------------------------------------
// Indexing (missing members yield Null, like the real crate).
// ---------------------------------------------------------------------

const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ---------------------------------------------------------------------
// Literal comparisons: assert_eq!(v["k"], "x"), v["n"] == 3, ...
// ---------------------------------------------------------------------

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}
eq_num!(i32, i64, u32, u64, usize, f64);

/// Builds a [`Value`] from a literal.
///
/// Supports `json!(null)`, `json!({ "k": expr, ... })` (values are plain
/// Rust expressions convertible via `Into<Value>`), `json!([expr, ...])`,
/// and `json!(expr)`. Nested object literals must be built separately —
/// a deliberate simplification versus the real crate's TT muncher.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::Value::from($elem)),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trip() {
        let v = json!({ "a": 1, "b": "two", "c": 2.5, "d": true, "e": json!(null) });
        let s = v.to_string();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["a"], 1);
        assert_eq!(back["b"], "two");
        assert_eq!(back["c"], 2.5);
        assert_eq!(back["d"], true);
        assert!(back["e"].is_null());
        assert!(back["missing"].is_null());
    }

    #[test]
    fn arrays_and_indexing() {
        let v = json!([1, 2, 3]);
        assert_eq!(v[1], 2);
        assert_eq!(v.as_array().unwrap().len(), 3);
        let s = v.to_string();
        assert_eq!(s, "[1,2,3]");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(json!(2.0).to_string(), "2.0");
        assert_eq!(json!(7u64).to_string(), "7");
    }

    #[test]
    fn string_escaping_round_trips() {
        let v = json!("a\"b\\c\nd\te\u{1}");
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "xs": json!([1, 2]), "name": "t" });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
