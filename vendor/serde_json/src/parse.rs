//! A strict recursive-descent JSON parser for [`Value`].

use std::fmt;

use crate::{Map, Number, Value};

/// Parse/serialize error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl Error {
    fn new(msg: impl Into<String>, pos: usize) -> Self {
        Error {
            msg: msg.into(),
            pos,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for Error {}

/// Types deserializable from a parsed [`Value`] (the stub's stand-in for
/// `serde::de::DeserializeOwned`).
pub trait FromJson: Sized {
    /// Converts the parsed tree into `Self`.
    fn from_value(v: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}

/// Parses a complete JSON document.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new("trailing characters", p.pos));
    }
    T::from_value(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected '{}'", b as char), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("expected '{lit}'"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new("expected a JSON value", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(out)),
                _ => return Err(Error::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.insert(key, v);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(out)),
                _ => return Err(Error::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8", start))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("invalid low surrogate", self.pos));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid codepoint", self.pos))?);
                    }
                    _ => return Err(Error::new("invalid escape", self.pos)),
                },
                _ => return Err(Error::new("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::new("truncated \\u escape", self.pos))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit", self.pos))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number", start))?;
        let n = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new("invalid number", start))?,
            )
        } else if let Ok(i) = text.parse::<i64>() {
            Number::Int(i)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::UInt(u)
        } else {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new("invalid number", start))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value = from_str(r#"{"a": [1, 2.5, {"b": null}], "c": "x\ny"}"#).unwrap();
        assert_eq!(v["a"][1], 2.5);
        assert!(v["a"][2]["b"].is_null());
        assert_eq!(v["c"], "x\ny");
    }

    #[test]
    fn unicode_escapes_including_surrogate_pairs() {
        let v: Value = from_str(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v, "A\u{e9}\u{1F600}");
    }

    #[test]
    fn large_u64_survives() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
